//! Attribute extraction: turning KG properties of the entities mentioned in a
//! table column into new candidate-confounder columns.
//!
//! Section 3.1 of the paper: map the distinct values of the extraction column
//! (e.g. `Country`) to KG entities via NED, pull all their properties,
//! optionally follow entity-valued links for additional hops, aggregate
//! one-to-many relations with a user-chosen function, and flatten everything
//! into a single *universal relation* keyed by the original table value. Any
//! property that is missing for an entity — or any value that fails to link —
//! becomes a null, which is exactly where the selection-bias machinery of
//! Section 3.2 enters.

use std::collections::{BTreeMap, HashMap};

use tabular::{Column, DataFrame, Result, Value};

use crate::graph::KnowledgeGraph;
use crate::linking::{EntityLinker, LinkOutcome};
use crate::triple::Object;

/// How to collapse a one-to-many property (several objects for one subject
/// and predicate) into a single value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OneToManyAgg {
    /// Mean of numeric objects (nulls when none are numeric).
    Mean,
    /// Maximum of numeric objects.
    Max,
    /// Minimum of numeric objects.
    Min,
    /// Number of objects.
    Count,
    /// First object in insertion order (rendered as a string if an entity).
    First,
}

impl OneToManyAgg {
    fn apply(self, objects: &[&Object]) -> Value {
        match self {
            OneToManyAgg::First => objects.first().map(|o| o.to_value()).unwrap_or(Value::Null),
            OneToManyAgg::Count => Value::Int(objects.len() as i64),
            OneToManyAgg::Mean | OneToManyAgg::Max | OneToManyAgg::Min => {
                let nums: Vec<f64> = objects
                    .iter()
                    .filter_map(|o| o.to_value().as_f64())
                    .collect();
                if nums.is_empty() {
                    return Value::Null;
                }
                let v = match self {
                    OneToManyAgg::Mean => nums.iter().sum::<f64>() / nums.len() as f64,
                    OneToManyAgg::Max => nums.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                    OneToManyAgg::Min => nums.iter().cloned().fold(f64::INFINITY, f64::min),
                    _ => unreachable!(),
                };
                Value::Float(v)
            }
        }
    }

    fn label(self) -> &'static str {
        match self {
            OneToManyAgg::Mean => "avg",
            OneToManyAgg::Max => "max",
            OneToManyAgg::Min => "min",
            OneToManyAgg::Count => "count",
            OneToManyAgg::First => "first",
        }
    }
}

/// Configuration for the extraction process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractionConfig {
    /// Number of hops to follow in the graph (1 = direct properties only).
    pub hops: usize,
    /// Aggregation for one-to-many properties.
    pub one_to_many: OneToManyAgg,
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        ExtractionConfig {
            hops: 1,
            one_to_many: OneToManyAgg::Mean,
        }
    }
}

/// Summary statistics of one extraction run (reported in Table 1 and used by
/// the missing-data experiments).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExtractionStats {
    /// Number of distinct table values submitted for linking.
    pub n_values: usize,
    /// Values that linked to a unique entity.
    pub n_linked: usize,
    /// Values whose linking was ambiguous (not linked).
    pub n_ambiguous: usize,
    /// Values with no matching entity.
    pub n_not_found: usize,
    /// Number of extracted attribute columns (excluding the key column).
    pub n_attributes: usize,
}

/// The output of [`extract_attributes`]: a table with one row per distinct
/// input value, keyed by `key_column`, plus the linking statistics.
#[derive(Debug, Clone)]
pub struct ExtractionResult {
    /// The universal relation of extracted properties.
    pub table: DataFrame,
    /// Name of the key column inside [`ExtractionResult::table`].
    pub key_column: String,
    /// Linking / extraction statistics.
    pub stats: ExtractionStats,
}

impl ExtractionResult {
    /// Names of the extracted attribute columns (everything but the key).
    pub fn attribute_names(&self) -> Vec<String> {
        self.table
            .column_names()
            .into_iter()
            .filter(|n| *n != self.key_column)
            .map(|s| s.to_string())
            .collect()
    }
}

/// Gathers the properties of one entity, collapsing one-to-many predicates.
///
/// Returns `(attribute name -> value, entity-valued single links)` — the
/// latter feed the next hop.
fn entity_properties(
    graph: &KnowledgeGraph,
    entity: &str,
    agg: OneToManyAgg,
) -> (BTreeMap<String, Value>, Vec<(String, String)>) {
    let mut by_pred: BTreeMap<&str, Vec<&Object>> = BTreeMap::new();
    for (pred, obj) in graph.properties(entity) {
        by_pred.entry(pred).or_default().push(obj);
    }
    let mut attrs = BTreeMap::new();
    let mut links = Vec::new();
    for (pred, objects) in by_pred {
        if objects.len() == 1 {
            let obj = objects[0];
            attrs.insert(pred.to_string(), obj.to_value());
            if let Object::Entity(e) = obj {
                links.push((pred.to_string(), e.clone()));
            }
        } else {
            // One-to-many: aggregate. Entity-valued multi-links are followed
            // at the next hop through their aggregated numeric sub-properties,
            // mirroring the paper's "Avg Population size of Ethnic-Group".
            let name = format!("{} {}", agg.label(), pred);
            attrs.insert(name, agg.apply(&objects));
            if objects.iter().all(|o| o.is_entity()) {
                for obj in &objects {
                    if let Object::Entity(e) = obj {
                        links.push((pred.to_string(), e.clone()));
                    }
                }
            }
        }
    }
    (attrs, links)
}

/// Extracts KG attributes for the given distinct table values.
///
/// The returned table has one row per input value (in input order), a key
/// column named `key_column` holding the original value, and one column per
/// extracted property. Unlinked values have nulls everywhere.
pub fn extract_attributes(
    graph: &KnowledgeGraph,
    values: &[String],
    key_column: &str,
    config: ExtractionConfig,
) -> Result<ExtractionResult> {
    let linker = EntityLinker::new(graph);
    let mut stats = ExtractionStats {
        n_values: values.len(),
        ..Default::default()
    };

    // attribute name -> (row index -> value)
    let mut attributes: BTreeMap<String, HashMap<usize, Value>> = BTreeMap::new();

    for (row, value) in values.iter().enumerate() {
        let outcome = linker.link(value);
        let entity = match outcome {
            LinkOutcome::Matched(e) => {
                stats.n_linked += 1;
                e
            }
            LinkOutcome::Ambiguous(_) => {
                stats.n_ambiguous += 1;
                continue;
            }
            LinkOutcome::NotFound => {
                stats.n_not_found += 1;
                continue;
            }
        };

        // Breadth-first expansion up to `hops` levels. Each frontier entry is
        // (prefix for attribute names, entity).
        let mut frontier: Vec<(String, String)> = vec![(String::new(), entity)];
        for _hop in 0..config.hops.max(1) {
            let mut next_frontier = Vec::new();
            for (prefix, ent) in &frontier {
                let (attrs, links) = entity_properties(graph, ent, config.one_to_many);
                for (name, value) in attrs {
                    let full = if prefix.is_empty() {
                        name
                    } else {
                        format!("{prefix}.{name}")
                    };
                    // Numeric aggregation across several linked entities that
                    // share the same attribute name (multi-valued hop): average
                    // them; otherwise first-wins.
                    attributes
                        .entry(full)
                        .or_default()
                        .entry(row)
                        .and_modify(|existing| {
                            if let (Some(a), Some(b)) = (existing.as_f64(), value.as_f64()) {
                                *existing = Value::Float((a + b) / 2.0);
                            }
                        })
                        .or_insert(value);
                }
                for (pred, target) in links {
                    let new_prefix = if prefix.is_empty() {
                        pred.clone()
                    } else {
                        format!("{prefix}.{pred}")
                    };
                    next_frontier.push((new_prefix, target));
                }
            }
            frontier = next_frontier;
            if frontier.is_empty() {
                break;
            }
        }
    }

    // Assemble the universal relation.
    let mut columns: Vec<Column> = Vec::with_capacity(attributes.len() + 1);
    columns.push(Column::from_str_values(
        key_column,
        values.iter().map(|v| Some(v.as_str())).collect(),
    ));
    for (name, cells) in &attributes {
        let col_values: Vec<Value> = (0..values.len())
            .map(|row| cells.get(&row).cloned().unwrap_or(Value::Null))
            .collect();
        columns.push(Column::from_values(name.clone(), col_values));
    }
    stats.n_attributes = attributes.len();
    let table = DataFrame::from_columns(columns)?;
    Ok(ExtractionResult {
        table,
        key_column: key_column.to_string(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> KnowledgeGraph {
        let mut g = KnowledgeGraph::new();
        for (country, hdi, gdp) in [
            ("Germany", 0.95, 4.2),
            ("Italy", 0.89, 2.1),
            ("United States", 0.92, 23.0),
        ] {
            g.add_fact(country, "HDI", Object::number(hdi));
            g.add_fact(country, "GDP", Object::number(gdp));
        }
        g.add_fact("Germany", "leader", Object::entity("Olaf Scholz"));
        g.add_fact("Olaf Scholz", "age", Object::integer(65));
        g.add_fact("United States", "ethnic group", Object::entity("Group A"));
        g.add_fact("United States", "ethnic group", Object::entity("Group B"));
        g.add_fact("Group A", "population", Object::number(100.0));
        g.add_fact("Group B", "population", Object::number(300.0));
        g.add_alias("USA", "United States");
        g
    }

    fn values(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn one_hop_extraction() {
        let res = extract_attributes(
            &graph(),
            &values(&["Germany", "Italy", "USA", "Atlantis"]),
            "Country",
            ExtractionConfig::default(),
        )
        .unwrap();
        assert_eq!(res.table.n_rows(), 4);
        assert_eq!(res.stats.n_linked, 3);
        assert_eq!(res.stats.n_not_found, 1);
        assert!(res.table.has_column("HDI"));
        assert!(res.table.has_column("GDP"));
        assert_eq!(res.table.get(0, "HDI").unwrap(), Value::Float(0.95));
        assert_eq!(res.table.get(2, "GDP").unwrap(), Value::Float(23.0));
        // unlinked value has nulls
        assert_eq!(res.table.get(3, "HDI").unwrap(), Value::Null);
        // key column preserved
        assert_eq!(
            res.table.get(2, "Country").unwrap(),
            Value::Str("USA".into())
        );
        assert!(res.attribute_names().contains(&"HDI".to_string()));
        assert!(!res.attribute_names().contains(&"Country".to_string()));
    }

    #[test]
    fn two_hop_extraction_follows_links() {
        let cfg = ExtractionConfig {
            hops: 2,
            ..Default::default()
        };
        let res = extract_attributes(&graph(), &values(&["Germany"]), "Country", cfg).unwrap();
        // leader age reachable at hop 2
        assert!(
            res.table.has_column("leader.age"),
            "columns: {:?}",
            res.table.column_names()
        );
        assert_eq!(res.table.get(0, "leader.age").unwrap(), Value::Int(65));
        // hop-1 entity link also materialised as a categorical value
        assert_eq!(
            res.table.get(0, "leader").unwrap(),
            Value::Str("Olaf Scholz".into())
        );
    }

    #[test]
    fn one_to_many_aggregation() {
        let cfg = ExtractionConfig {
            hops: 2,
            one_to_many: OneToManyAgg::Mean,
        };
        let res =
            extract_attributes(&graph(), &values(&["United States"]), "Country", cfg).unwrap();
        // two ethnic groups, populations 100 and 300 averaged at hop 2
        assert!(res.table.has_column("ethnic group.population"));
        assert_eq!(
            res.table.get(0, "ethnic group.population").unwrap(),
            Value::Float(200.0)
        );
    }

    #[test]
    fn one_to_many_agg_variants() {
        let objs = [Object::number(1.0), Object::number(3.0)];
        let refs: Vec<&Object> = objs.iter().collect();
        assert_eq!(OneToManyAgg::Mean.apply(&refs), Value::Float(2.0));
        assert_eq!(OneToManyAgg::Max.apply(&refs), Value::Float(3.0));
        assert_eq!(OneToManyAgg::Min.apply(&refs), Value::Float(1.0));
        assert_eq!(OneToManyAgg::Count.apply(&refs), Value::Int(2));
        assert_eq!(OneToManyAgg::First.apply(&refs), Value::Float(1.0));
        let ents = [Object::entity("A"), Object::entity("B")];
        let erefs: Vec<&Object> = ents.iter().collect();
        assert_eq!(OneToManyAgg::Mean.apply(&erefs), Value::Null);
        assert_eq!(OneToManyAgg::Count.apply(&erefs), Value::Int(2));
        assert_eq!(OneToManyAgg::First.apply(&erefs), Value::Str("A".into()));
        assert_eq!(OneToManyAgg::First.apply(&[]), Value::Null);
    }

    #[test]
    fn stats_count_outcomes() {
        let mut g = graph();
        g.add_fact("Ronaldo L", "cups", Object::integer(3));
        g.add_fact("Ronaldo C", "cups", Object::integer(5));
        g.add_alias("Ronaldo", "Ronaldo L");
        g.add_alias("Ronaldo", "Ronaldo C");
        let res = extract_attributes(
            &g,
            &values(&["Germany", "Ronaldo", "Nowhere"]),
            "Name",
            ExtractionConfig::default(),
        )
        .unwrap();
        assert_eq!(res.stats.n_values, 3);
        assert_eq!(res.stats.n_linked, 1);
        assert_eq!(res.stats.n_ambiguous, 1);
        assert_eq!(res.stats.n_not_found, 1);
        assert!(res.stats.n_attributes >= 2);
    }

    #[test]
    fn empty_inputs() {
        let res =
            extract_attributes(&graph(), &[], "Country", ExtractionConfig::default()).unwrap();
        assert_eq!(res.table.n_rows(), 0);
        assert_eq!(res.stats.n_values, 0);
        let empty_graph = KnowledgeGraph::new();
        let res = extract_attributes(
            &empty_graph,
            &values(&["Germany"]),
            "Country",
            ExtractionConfig::default(),
        )
        .unwrap();
        assert_eq!(res.stats.n_not_found, 1);
        assert_eq!(res.stats.n_attributes, 0);
    }
}
