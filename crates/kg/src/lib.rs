//! # kg
//!
//! The knowledge-graph substrate of the MESA reproduction: an interned,
//! columnar triple store standing in for DBpedia, a rule-based entity linker
//! (NED), attribute extraction with multi-hop traversal and one-to-many
//! aggregation, and the missing-value injectors used by the robustness
//! experiments.
//!
//! The storage layer is dictionary-encoded: entity and predicate names live
//! in [`Interner`] symbol tables ([`Sym`] ids), triples are three parallel
//! arrays, and per-entity property lookup goes through a lazily built CSR
//! index. Extraction links values through the graph's cached
//! [`EntityLinker`], expands each *distinct entity* once (in parallel), and
//! scatters the shared expansions into dense column builders.
//!
//! ```
//! use kg::{KnowledgeGraph, Object, extract_attributes, ExtractionConfig};
//!
//! let mut g = KnowledgeGraph::new();
//! g.add_fact("Germany", "HDI", Object::number(0.95));
//! g.add_fact("Germany", "GDP", Object::number(4.2));
//! g.add_alias("Deutschland", "Germany");
//!
//! let res = extract_attributes(
//!     &g,
//!     &["Deutschland".to_string(), "Narnia".to_string()],
//!     "Country",
//!     ExtractionConfig::default(),
//! ).unwrap();
//! assert_eq!(res.stats.n_linked, 1);
//! assert_eq!(res.stats.n_not_found, 1);
//! assert!(res.table.has_column("HDI"));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod extraction;
pub mod graph;
pub mod intern;
pub mod linking;
pub mod missing;
pub mod triple;

pub use extraction::{
    extract_attributes, ExtractionConfig, ExtractionResult, ExtractionStats, OneToManyAgg,
};
pub use graph::{KnowledgeGraph, StoredObject};
pub use intern::{Interner, Sym};
pub use linking::{normalize, EntityLinker, LinkId, LinkOutcome};
pub use missing::{impute_mean, remove_at_random, remove_biased};
pub use triple::{Object, Triple};
