//! The knowledge graph store: an interned, columnar triple store with a CSR
//! adjacency index, plus the alias table the entity linker consults.
//!
//! Layout: entity and predicate names live in [`Interner`] symbol tables and
//! triples are stored struct-of-arrays — three parallel vectors of
//! `(subject Sym, predicate Sym, object)` where entity-valued objects hold
//! symbols instead of cloned `String`s. Property lookup goes through a CSR
//! index (`offsets` + neighbor array sorted by predicate *name*) built
//! lazily on first read and invalidated by mutation, so
//! `KnowledgeGraph::properties_of` (crate-internal) returns a borrowed slice with zero
//! allocation. The [`crate::EntityLinker`] built from the graph is cached
//! the same way, which is what makes repeated `extract_attributes` calls
//! cheap.

use std::collections::HashMap;
use std::sync::OnceLock;

use tabular::Value;

use crate::intern::{Interner, Sym};
use crate::linking::EntityLinker;
use crate::triple::{Object, Triple};

/// The object position of a stored triple: an interned entity reference or a
/// literal value. The id-based mirror of [`Object`].
#[derive(Debug, Clone, PartialEq)]
pub enum StoredObject {
    /// A reference to another entity, by symbol.
    Entity(Sym),
    /// A literal value (number, string, boolean).
    Literal(Value),
}

impl StoredObject {
    /// Whether the object references an entity.
    #[inline]
    pub fn is_entity(&self) -> bool {
        matches!(self, StoredObject::Entity(_))
    }
}

/// The CSR adjacency index over the triple arrays.
///
/// `adjacency[offsets[s.index()]..offsets[s.index() + 1]]` holds the triple
/// indices whose subject is `s`, sorted by the *lexicographic rank of the
/// predicate name* and then by insertion order — so one linear scan visits
/// an entity's properties grouped by predicate, in predicate-name order,
/// with each group's objects in insertion order. That is exactly the
/// iteration order attribute extraction needs.
#[derive(Debug, Clone, Default)]
struct CsrIndex {
    offsets: Vec<u32>,
    adjacency: Vec<u32>,
    /// Predicate symbols sorted by name.
    sorted_preds: Vec<Sym>,
}

/// An in-memory knowledge graph.
///
/// The graph plays the role DBpedia plays in the paper: a large collection
/// of `(entity, property, value)` facts from which MESA mines candidate
/// confounding attributes. Subjects are indexed for fast per-entity property
/// lookup during extraction.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeGraph {
    /// Entity names and alias targets. `entity_flags` marks the symbols that
    /// were registered as actual entities (subjects or entity-valued
    /// objects); alias targets without facts stay unflagged.
    symbols: Interner,
    entity_flags: Vec<bool>,
    n_entities: usize,
    predicates: Interner,
    /// Struct-of-arrays triple storage.
    subjects: Vec<Sym>,
    preds: Vec<Sym>,
    objects: Vec<StoredObject>,
    /// alias name -> canonical target symbols, in alias insertion order.
    /// An alias registered for several entities is *ambiguous*: the linker
    /// refuses to resolve it (the paper's "Ronaldo" example).
    alias_index: HashMap<String, usize>,
    alias_entries: Vec<(String, Vec<Sym>)>,
    /// Lazily built, invalidated by mutation.
    index: OnceLock<CsrIndex>,
    linker: OnceLock<EntityLinker>,
}

impl KnowledgeGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        KnowledgeGraph::default()
    }

    /// Creates an empty graph with storage preallocated for roughly
    /// `n_triples` facts over `n_entities` distinct entities.
    pub fn with_capacity(n_triples: usize, n_entities: usize) -> Self {
        KnowledgeGraph {
            symbols: Interner::with_capacity(n_entities),
            entity_flags: Vec::with_capacity(n_entities),
            subjects: Vec::with_capacity(n_triples),
            preds: Vec::with_capacity(n_triples),
            objects: Vec::with_capacity(n_triples),
            ..KnowledgeGraph::default()
        }
    }

    fn invalidate(&mut self) {
        self.index = OnceLock::new();
        self.linker = OnceLock::new();
    }

    fn intern_symbol(&mut self, name: &str) -> Sym {
        let sym = self.symbols.intern(name);
        if sym.index() == self.entity_flags.len() {
            self.entity_flags.push(false);
        }
        sym
    }

    /// Interns `name` and registers it as an entity, returning its symbol.
    /// The id-based builder entry point: intern each subject once, then add
    /// facts by symbol.
    pub fn intern_entity(&mut self, name: &str) -> Sym {
        let sym = self.intern_symbol(name);
        if !self.entity_flags[sym.index()] {
            self.entity_flags[sym.index()] = true;
            self.n_entities += 1;
            self.invalidate();
        }
        sym
    }

    /// Interns a predicate name, returning its symbol.
    pub fn intern_predicate(&mut self, name: &str) -> Sym {
        // Interning a new predicate changes the name ranks in the CSR index.
        let before = self.predicates.len();
        let sym = self.predicates.intern(name);
        if self.predicates.len() != before {
            self.invalidate();
        }
        sym
    }

    /// Adds `(subject, predicate, object)` by symbol — the allocation-free
    /// fast path used by the data generator. Entity-valued objects must
    /// already be registered via [`KnowledgeGraph::intern_entity`].
    pub fn add_fact_ids(&mut self, subject: Sym, predicate: Sym, object: StoredObject) {
        debug_assert!(subject.index() < self.symbols.len(), "unknown subject");
        debug_assert!(
            predicate.index() < self.predicates.len(),
            "unknown predicate"
        );
        if let StoredObject::Entity(e) = object {
            debug_assert!(
                self.entity_flags.get(e.index()).copied().unwrap_or(false),
                "entity-valued object must be interned via intern_entity"
            );
        }
        self.subjects.push(subject);
        self.preds.push(predicate);
        self.objects.push(object);
        self.invalidate();
    }

    /// Interns an entity name for use as an entity-valued object.
    pub fn object_entity(&mut self, name: &str) -> StoredObject {
        StoredObject::Entity(self.intern_entity(name))
    }

    /// Adds a fact to the graph. The subject (and any entity-valued object)
    /// is registered as an entity.
    pub fn add(&mut self, triple: Triple) {
        let s = self.intern_entity(&triple.subject);
        let p = self.intern_predicate(&triple.predicate);
        let o = match triple.object {
            Object::Entity(e) => StoredObject::Entity(self.intern_entity(&e)),
            Object::Literal(v) => StoredObject::Literal(v),
        };
        self.add_fact_ids(s, p, o);
    }

    /// Convenience: adds `(subject, predicate, object)`.
    pub fn add_fact(
        &mut self,
        subject: impl Into<String>,
        predicate: impl Into<String>,
        object: Object,
    ) {
        let s = self.intern_entity(&subject.into());
        let p = self.intern_predicate(&predicate.into());
        let o = match object {
            Object::Entity(e) => StoredObject::Entity(self.intern_entity(&e)),
            Object::Literal(v) => StoredObject::Literal(v),
        };
        self.add_fact_ids(s, p, o);
    }

    /// Registers an alias for an entity (the linker resolves aliases to the
    /// canonical name). Registering an alias does not create the entity.
    /// Registering the same alias for several entities makes it ambiguous.
    pub fn add_alias(&mut self, alias: impl Into<String>, canonical: impl Into<String>) {
        let canonical = self.intern_symbol(&canonical.into());
        let alias = alias.into();
        let idx = match self.alias_index.get(&alias) {
            Some(&idx) => idx,
            None => {
                let idx = self.alias_entries.len();
                self.alias_entries.push((alias.clone(), Vec::new()));
                self.alias_index.insert(alias, idx);
                idx
            }
        };
        let targets = &mut self.alias_entries[idx].1;
        if !targets.contains(&canonical) {
            targets.push(canonical);
            self.invalidate();
        }
    }

    /// The canonical entity for an alias, when it resolves uniquely.
    pub fn resolve_alias(&self, alias: &str) -> Option<&str> {
        match self
            .alias_index
            .get(alias)
            .map(|&i| &self.alias_entries[i].1)
        {
            Some(targets) if targets.len() == 1 => Some(self.symbols.resolve(targets[0])),
            _ => None,
        }
    }

    /// All registered `(alias, canonical)` pairs in alias registration
    /// order, used by the entity linker. An ambiguous alias contributes one
    /// pair per target. Borrowed — nothing is cloned.
    pub fn alias_entries(&self) -> impl Iterator<Item = (&str, &str)> {
        self.alias_entries.iter().flat_map(move |(alias, targets)| {
            targets
                .iter()
                .map(move |&t| (alias.as_str(), self.symbols.resolve(t)))
        })
    }

    /// The full symbol table (entities and alias targets).
    pub(crate) fn symbols(&self) -> &Interner {
        &self.symbols
    }

    /// Like [`KnowledgeGraph::alias_entries`], but yielding target symbols.
    pub(crate) fn alias_sym_entries(&self) -> impl Iterator<Item = (&str, &[Sym])> {
        self.alias_entries
            .iter()
            .map(|(alias, targets)| (alias.as_str(), targets.as_slice()))
    }

    /// Whether the graph knows this exact entity name.
    pub fn has_entity(&self, name: &str) -> bool {
        self.entity_id(name).is_some()
    }

    /// The symbol of an entity, when `name` is a registered entity.
    pub fn entity_id(&self, name: &str) -> Option<Sym> {
        self.symbols
            .get(name)
            .filter(|s| self.entity_flags[s.index()])
    }

    /// The name behind an entity (or alias-target) symbol.
    #[inline]
    pub fn entity_name(&self, sym: Sym) -> &str {
        self.symbols.resolve(sym)
    }

    /// All entity names, in first-registration order.
    pub fn entities(&self) -> impl Iterator<Item = &str> {
        self.symbols
            .iter()
            .filter(|(s, _)| self.entity_flags[s.index()])
            .map(|(_, name)| name)
    }

    /// All entity symbols, in first-registration order.
    pub fn entity_ids(&self) -> impl Iterator<Item = Sym> + '_ {
        self.symbols
            .iter()
            .map(|(s, _)| s)
            .filter(|s| self.entity_flags[s.index()])
    }

    /// Number of distinct entities.
    pub fn n_entities(&self) -> usize {
        self.n_entities
    }

    /// Number of triples.
    pub fn n_triples(&self) -> usize {
        self.subjects.len()
    }

    /// The predicate symbol of triple `t`.
    #[inline]
    pub(crate) fn triple_pred(&self, t: u32) -> Sym {
        self.preds[t as usize]
    }

    /// The stored object of triple `t`.
    #[inline]
    pub(crate) fn triple_object(&self, t: u32) -> &StoredObject {
        &self.objects[t as usize]
    }

    /// The name behind a predicate symbol.
    #[inline]
    pub fn predicate_name(&self, sym: Sym) -> &str {
        self.predicates.resolve(sym)
    }

    /// Number of distinct predicates.
    pub fn n_predicates(&self) -> usize {
        self.predicates.len()
    }

    /// Materialises a stored object as an [`Object`] (cloning names/values).
    pub fn object(&self, stored: &StoredObject) -> Object {
        match stored {
            StoredObject::Entity(e) => Object::Entity(self.symbols.resolve(*e).to_string()),
            StoredObject::Literal(v) => Object::Literal(v.clone()),
        }
    }

    /// Converts a stored object to a literal [`Value`], rendering entity
    /// references as their name (the id-based mirror of
    /// [`Object::to_value`]).
    pub fn object_value(&self, stored: &StoredObject) -> Value {
        match stored {
            StoredObject::Entity(e) => Value::Str(self.symbols.resolve(*e).to_string()),
            StoredObject::Literal(v) => v.clone(),
        }
    }

    /// Builds (or returns) the CSR index and cached entity linker.
    ///
    /// Reads trigger this lazily, so calling `finalize` is never required
    /// for correctness — builders call it once after bulk loading to move
    /// the indexing cost out of the first query.
    pub fn finalize(&self) {
        self.csr();
        self.linker();
    }

    fn csr(&self) -> &CsrIndex {
        self.index.get_or_init(|| {
            // Rank predicates by name so each subject's adjacency scans in
            // predicate-name order (the order extraction groups by).
            let mut sorted_preds: Vec<Sym> = self.predicates.iter().map(|(s, _)| s).collect();
            sorted_preds.sort_unstable_by_key(|&s| self.predicates.resolve(s));
            let mut pred_rank = vec![0u32; self.predicates.len()];
            for (rank, &sym) in sorted_preds.iter().enumerate() {
                pred_rank[sym.index()] = rank as u32;
            }

            // Counting sort of triple indices by subject symbol.
            let n_syms = self.symbols.len();
            let mut counts = vec![0u32; n_syms + 1];
            for s in &self.subjects {
                counts[s.index() + 1] += 1;
            }
            let mut offsets = counts;
            for i in 1..offsets.len() {
                offsets[i] += offsets[i - 1];
            }
            let mut adjacency = vec![0u32; self.subjects.len()];
            let mut cursor = offsets.clone();
            for (t, s) in self.subjects.iter().enumerate() {
                adjacency[cursor[s.index()] as usize] = t as u32;
                cursor[s.index()] += 1;
            }
            // Within a subject: predicate-name order, then insertion order.
            // The counting sort emitted insertion order, so a stable sort by
            // rank alone preserves it.
            for w in offsets.windows(2) {
                let (lo, hi) = (w[0] as usize, w[1] as usize);
                adjacency[lo..hi].sort_by_key(|&t| pred_rank[self.preds[t as usize].index()]);
            }
            CsrIndex {
                offsets,
                adjacency,
                sorted_preds,
            }
        })
    }

    /// The cached entity linker for this graph (built on first use).
    pub fn linker(&self) -> &EntityLinker {
        self.linker.get_or_init(|| EntityLinker::new(self))
    }

    /// The triple indices of an entity's facts as a borrowed slice, grouped
    /// by predicate in predicate-name order, insertion order within a group.
    /// Empty when the entity has no outgoing facts. Zero allocation.
    pub(crate) fn properties_of(&self, subject: Sym) -> &[u32] {
        let csr = self.csr();
        let i = subject.index();
        if i + 1 >= csr.offsets.len() {
            return &[];
        }
        &csr.adjacency[csr.offsets[i] as usize..csr.offsets[i + 1] as usize]
    }

    /// All properties of an entity, as `(predicate, object)` pairs in
    /// insertion order. Empty when the entity has no outgoing facts.
    ///
    /// Compatibility wrapper that materialises owned [`Object`]s; the
    /// extraction hot path iterates `KnowledgeGraph::properties_of`
    /// instead.
    pub fn properties(&self, subject: &str) -> Vec<(&str, Object)> {
        let Some(sym) = self.symbols.get(subject) else {
            return Vec::new();
        };
        let mut idxs: Vec<u32> = self.properties_of(sym).to_vec();
        idxs.sort_unstable();
        idxs.into_iter()
            .map(|t| {
                (
                    self.predicates.resolve(self.preds[t as usize]),
                    self.object(&self.objects[t as usize]),
                )
            })
            .collect()
    }

    /// The distinct predicate names appearing anywhere in the graph, sorted.
    pub fn predicates(&self) -> Vec<&str> {
        self.csr()
            .sorted_preds
            .iter()
            .map(|&s| self.predicates.resolve(s))
            .collect()
    }

    /// Merges another graph into this one (triples and aliases) as a bulk
    /// columnar append: symbols are remapped through the interners once and
    /// the triple arrays are extended in place — no per-triple re-hashing of
    /// names.
    pub fn merge(&mut self, other: &KnowledgeGraph) {
        // Remap other's symbols into self, preserving entity flags.
        let sym_map: Vec<Sym> = other
            .symbols
            .iter()
            .map(|(sym, name)| {
                if other.entity_flags[sym.index()] {
                    self.intern_entity(name)
                } else {
                    self.intern_symbol(name)
                }
            })
            .collect();
        let pred_map: Vec<Sym> = other
            .predicates
            .iter()
            .map(|(_, name)| self.intern_predicate(name))
            .collect();

        self.subjects.reserve(other.subjects.len());
        self.preds.reserve(other.preds.len());
        self.objects.reserve(other.objects.len());
        self.subjects
            .extend(other.subjects.iter().map(|s| sym_map[s.index()]));
        self.preds
            .extend(other.preds.iter().map(|p| pred_map[p.index()]));
        self.objects.extend(other.objects.iter().map(|o| match o {
            StoredObject::Entity(e) => StoredObject::Entity(sym_map[e.index()]),
            StoredObject::Literal(v) => StoredObject::Literal(v.clone()),
        }));

        for (alias, targets) in &other.alias_entries {
            for &t in targets {
                self.add_alias(alias.clone(), other.symbols.resolve(t));
            }
        }
        self.invalidate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KnowledgeGraph {
        let mut g = KnowledgeGraph::new();
        g.add_fact("Germany", "HDI", Object::number(0.95));
        g.add_fact("Germany", "GDP", Object::number(4.2));
        g.add_fact("Germany", "currency", Object::entity("Euro"));
        g.add_fact("United States", "HDI", Object::number(0.92));
        g.add_alias("USA", "United States");
        g.add_alias("Deutschland", "Germany");
        g
    }

    #[test]
    fn counts_and_membership() {
        let g = sample();
        assert_eq!(g.n_triples(), 4);
        // Germany, United States, Euro
        assert_eq!(g.n_entities(), 3);
        assert!(g.has_entity("Euro"));
        assert!(!g.has_entity("USA")); // alias, not entity
        assert_eq!(g.entities().count(), 3);
        assert_eq!(g.entity_ids().count(), 3);
    }

    #[test]
    fn properties_lookup() {
        let g = sample();
        let props = g.properties("Germany");
        assert_eq!(props.len(), 3);
        assert_eq!(props[0].0, "HDI");
        assert!(g.properties("Atlantis").is_empty());
    }

    #[test]
    fn csr_slice_is_pred_name_sorted() {
        let g = sample();
        let sym = g.entity_id("Germany").unwrap();
        let idxs = g.properties_of(sym);
        let names: Vec<&str> = idxs
            .iter()
            .map(|&t| g.predicate_name(g.triple_pred(t)))
            .collect();
        assert_eq!(names, vec!["GDP", "HDI", "currency"]);
        // object slice access without allocation
        assert!(g.triple_object(idxs[2]).is_entity());
    }

    #[test]
    fn aliases_resolve() {
        let g = sample();
        assert_eq!(g.resolve_alias("USA"), Some("United States"));
        assert_eq!(g.resolve_alias("Germany"), None);
        let entries: Vec<(&str, &str)> = g.alias_entries().collect();
        assert_eq!(
            entries,
            vec![("USA", "United States"), ("Deutschland", "Germany")]
        );
    }

    #[test]
    fn predicates_sorted_unique() {
        let g = sample();
        assert_eq!(g.predicates(), vec!["GDP", "HDI", "currency"]);
    }

    #[test]
    fn merge_combines() {
        let mut a = sample();
        let mut b = KnowledgeGraph::new();
        b.add_fact("France", "HDI", Object::number(0.9));
        b.add_alias("FR", "France");
        a.merge(&b);
        assert_eq!(a.n_triples(), 5);
        assert!(a.has_entity("France"));
        assert_eq!(a.resolve_alias("FR"), Some("France"));
    }

    #[test]
    fn merge_remaps_entity_objects_and_dedups_aliases() {
        let mut a = sample();
        let mut b = KnowledgeGraph::new();
        // "Euro" already exists in `a` under a different symbol id.
        b.add_fact("France", "currency", Object::entity("Euro"));
        b.add_alias("USA", "United States"); // duplicate of a's alias
        a.merge(&b);
        let props = a.properties("France");
        assert_eq!(props[0].0, "currency");
        assert_eq!(props[0].1, Object::entity("Euro"));
        // still a single (USA -> United States) pair
        assert_eq!(a.alias_entries().filter(|(al, _)| *al == "USA").count(), 1);
        assert_eq!(a.resolve_alias("USA"), Some("United States"));
    }

    #[test]
    fn id_based_builder_api() {
        let mut g = KnowledgeGraph::with_capacity(4, 2);
        let de = g.intern_entity("Germany");
        let hdi = g.intern_predicate("HDI");
        let currency = g.intern_predicate("currency");
        let euro = g.object_entity("Euro");
        g.add_fact_ids(de, hdi, StoredObject::Literal(Value::Float(0.95)));
        g.add_fact_ids(de, currency, euro);
        assert_eq!(g.n_triples(), 2);
        assert_eq!(g.n_entities(), 2);
        assert_eq!(g.entity_name(de), "Germany");
        let props = g.properties("Germany");
        assert_eq!(props[1].1, Object::entity("Euro"));
    }

    #[test]
    fn mutation_invalidates_index() {
        let mut g = sample();
        assert_eq!(g.properties("Germany").len(), 3);
        g.add_fact("Germany", "Area", Object::number(357.0));
        assert_eq!(g.properties("Germany").len(), 4);
        assert_eq!(g.predicates(), vec!["Area", "GDP", "HDI", "currency"]);
    }
}
