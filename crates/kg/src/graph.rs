//! The knowledge graph store: triples indexed by subject, plus the alias
//! table the entity linker consults.

use std::collections::{HashMap, HashSet};

use crate::triple::{Object, Triple};

/// An in-memory knowledge graph.
///
/// The graph plays the role DBpedia plays in the paper: a large collection of
/// `(entity, property, value)` facts from which MESA mines candidate
/// confounding attributes. Subjects are indexed for fast per-entity property
/// lookup during extraction.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeGraph {
    triples: Vec<Triple>,
    by_subject: HashMap<String, Vec<usize>>,
    entities: HashSet<String>,
    /// alias -> canonical entity names (e.g. "USA" -> ["United States"]).
    /// An alias registered for several entities is *ambiguous*: the linker
    /// refuses to resolve it (the paper's "Ronaldo" example).
    aliases: HashMap<String, Vec<String>>,
}

impl KnowledgeGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        KnowledgeGraph::default()
    }

    /// Adds a fact to the graph. The subject (and any entity-valued object)
    /// is registered as an entity.
    pub fn add(&mut self, triple: Triple) {
        self.entities.insert(triple.subject.clone());
        if let Object::Entity(e) = &triple.object {
            self.entities.insert(e.clone());
        }
        self.by_subject
            .entry(triple.subject.clone())
            .or_default()
            .push(self.triples.len());
        self.triples.push(triple);
    }

    /// Convenience: adds `(subject, predicate, object)`.
    pub fn add_fact(
        &mut self,
        subject: impl Into<String>,
        predicate: impl Into<String>,
        object: Object,
    ) {
        self.add(Triple::new(subject, predicate, object));
    }

    /// Registers an alias for an entity (the linker resolves aliases to the
    /// canonical name). Registering an alias does not create the entity.
    /// Registering the same alias for several entities makes it ambiguous.
    pub fn add_alias(&mut self, alias: impl Into<String>, canonical: impl Into<String>) {
        let canonical = canonical.into();
        let entry = self.aliases.entry(alias.into()).or_default();
        if !entry.contains(&canonical) {
            entry.push(canonical);
        }
    }

    /// The canonical entity for an alias, when it resolves uniquely.
    pub fn resolve_alias(&self, alias: &str) -> Option<&str> {
        match self.aliases.get(alias) {
            Some(targets) if targets.len() == 1 => Some(targets[0].as_str()),
            _ => None,
        }
    }

    /// All registered `(alias, canonical)` pairs, used by the entity linker.
    /// An ambiguous alias contributes one pair per target.
    pub fn alias_entries(&self) -> Vec<(String, String)> {
        self.aliases
            .iter()
            .flat_map(|(a, cs)| cs.iter().map(move |c| (a.clone(), c.clone())))
            .collect()
    }

    /// Whether the graph knows this exact entity name.
    pub fn has_entity(&self, name: &str) -> bool {
        self.entities.contains(name)
    }

    /// All entity names (unordered).
    pub fn entities(&self) -> impl Iterator<Item = &str> {
        self.entities.iter().map(|s| s.as_str())
    }

    /// Number of distinct entities.
    pub fn n_entities(&self) -> usize {
        self.entities.len()
    }

    /// Number of triples.
    pub fn n_triples(&self) -> usize {
        self.triples.len()
    }

    /// All properties of an entity, as `(predicate, object)` pairs in
    /// insertion order. Empty when the entity has no outgoing facts.
    pub fn properties(&self, subject: &str) -> Vec<(&str, &Object)> {
        self.by_subject
            .get(subject)
            .map(|idxs| {
                idxs.iter()
                    .map(|&i| (self.triples[i].predicate.as_str(), &self.triples[i].object))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The distinct predicate names appearing anywhere in the graph.
    pub fn predicates(&self) -> Vec<&str> {
        let mut set: HashSet<&str> = HashSet::new();
        for t in &self.triples {
            set.insert(t.predicate.as_str());
        }
        let mut v: Vec<&str> = set.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Merges another graph into this one (triples and aliases).
    pub fn merge(&mut self, other: &KnowledgeGraph) {
        for t in &other.triples {
            self.add(t.clone());
        }
        for (a, c) in other.alias_entries() {
            self.add_alias(a, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KnowledgeGraph {
        let mut g = KnowledgeGraph::new();
        g.add_fact("Germany", "HDI", Object::number(0.95));
        g.add_fact("Germany", "GDP", Object::number(4.2));
        g.add_fact("Germany", "currency", Object::entity("Euro"));
        g.add_fact("United States", "HDI", Object::number(0.92));
        g.add_alias("USA", "United States");
        g.add_alias("Deutschland", "Germany");
        g
    }

    #[test]
    fn counts_and_membership() {
        let g = sample();
        assert_eq!(g.n_triples(), 4);
        // Germany, United States, Euro
        assert_eq!(g.n_entities(), 3);
        assert!(g.has_entity("Euro"));
        assert!(!g.has_entity("USA")); // alias, not entity
        assert_eq!(g.entities().count(), 3);
    }

    #[test]
    fn properties_lookup() {
        let g = sample();
        let props = g.properties("Germany");
        assert_eq!(props.len(), 3);
        assert_eq!(props[0].0, "HDI");
        assert!(g.properties("Atlantis").is_empty());
    }

    #[test]
    fn aliases_resolve() {
        let g = sample();
        assert_eq!(g.resolve_alias("USA"), Some("United States"));
        assert_eq!(g.resolve_alias("Germany"), None);
    }

    #[test]
    fn predicates_sorted_unique() {
        let g = sample();
        assert_eq!(g.predicates(), vec!["GDP", "HDI", "currency"]);
    }

    #[test]
    fn merge_combines() {
        let mut a = sample();
        let mut b = KnowledgeGraph::new();
        b.add_fact("France", "HDI", Object::number(0.9));
        b.add_alias("FR", "France");
        a.merge(&b);
        assert_eq!(a.n_triples(), 5);
        assert!(a.has_entity("France"));
        assert_eq!(a.resolve_alias("FR"), Some("France"));
    }
}
