//! Missing-value injection used by the robustness experiments (Figure 3).
//!
//! The paper evaluates robustness by removing values from the most relevant
//! extracted attributes in two ways: *missing at random* and *biased removal*
//! (the top-x highest values are removed — a textbook source of selection
//! bias). Both injectors operate in place on a cloned frame.

use rand::seq::SliceRandom;
use rand::Rng;

use tabular::{DataFrame, Result};

/// Removes (sets to null) a `fraction` of the currently non-null cells of
/// `column`, chosen uniformly at random.
pub fn remove_at_random<R: Rng>(
    df: &DataFrame,
    column: &str,
    fraction: f64,
    rng: &mut R,
) -> Result<DataFrame> {
    let fraction = fraction.clamp(0.0, 1.0);
    let mut out = df.clone();
    let col = out.column(column)?;
    let mut present: Vec<usize> = (0..col.len()).filter(|&i| !col.is_null_at(i)).collect();
    present.shuffle(rng);
    let n_remove = (present.len() as f64 * fraction).round() as usize;
    let col = out.column_mut(column)?;
    for &i in present.iter().take(n_remove) {
        col.set_null(i)?;
    }
    Ok(out)
}

/// Removes (sets to null) the cells holding the top-`fraction` *highest*
/// values of `column` — biased removal, which makes the remaining complete
/// cases systematically unrepresentative.
///
/// For categorical columns the "highest" values are the lexicographically
/// largest, which is still a deterministic, value-dependent (hence biased)
/// removal rule.
pub fn remove_biased(df: &DataFrame, column: &str, fraction: f64) -> Result<DataFrame> {
    let fraction = fraction.clamp(0.0, 1.0);
    let mut out = df.clone();
    let col = out.column(column)?;
    let mut present: Vec<usize> = (0..col.len()).filter(|&i| !col.is_null_at(i)).collect();
    // Sort descending by value.
    present.sort_by(|&a, &b| {
        let va = col.get(a).expect("in range");
        let vb = col.get(b).expect("in range");
        vb.partial_cmp(&va).unwrap_or(std::cmp::Ordering::Equal)
    });
    let n_remove = (present.len() as f64 * fraction).round() as usize;
    let col = out.column_mut(column)?;
    for &i in present.iter().take(n_remove) {
        col.set_null(i)?;
    }
    Ok(out)
}

/// Imputes missing numeric cells of `column` with the mean of the observed
/// cells (the "common mean imputation technique" the paper compares against).
/// Categorical columns are imputed with the most frequent value.
pub fn impute_mean(df: &DataFrame, column: &str) -> Result<DataFrame> {
    let mut out = df.clone();
    let col = out.column(column)?;
    if col.dtype().is_numeric() {
        let mean = match col.mean() {
            Some(m) => m,
            None => return Ok(out),
        };
        let nulls: Vec<usize> = (0..col.len()).filter(|&i| col.is_null_at(i)).collect();
        let col = out.column_mut(column)?;
        for i in nulls {
            col.set(i, tabular::Value::Float(mean))?;
        }
    } else {
        // Mode imputation for discrete columns.
        let enc = col.encode();
        let mut counts = vec![0usize; enc.cardinality()];
        for c in enc.iter_codes().flatten() {
            counts[c as usize] += 1;
        }
        let mode = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| enc.label(i as u32).to_string());
        let mode = match mode {
            Some(m) => m,
            None => return Ok(out),
        };
        let nulls: Vec<usize> = (0..col.len()).filter(|&i| col.is_null_at(i)).collect();
        let col = out.column_mut(column)?;
        for i in nulls {
            col.set(i, tabular::Value::Str(mode.clone()))?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tabular::DataFrameBuilder;

    fn df() -> DataFrame {
        DataFrameBuilder::new()
            .float("hdi", (0..100).map(|i| Some(i as f64)).collect())
            .cat(
                "cat",
                (0..100)
                    .map(|i| Some(if i % 3 == 0 { "a" } else { "b" }))
                    .collect(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn random_removal_hits_target_fraction() {
        let mut rng = StdRng::seed_from_u64(7);
        let out = remove_at_random(&df(), "hdi", 0.3, &mut rng).unwrap();
        assert_eq!(out.column("hdi").unwrap().null_count(), 30);
        // original untouched
        assert_eq!(df().column("hdi").unwrap().null_count(), 0);
    }

    #[test]
    fn random_removal_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(
            remove_at_random(&df(), "hdi", 0.0, &mut rng)
                .unwrap()
                .column("hdi")
                .unwrap()
                .null_count(),
            0
        );
        assert_eq!(
            remove_at_random(&df(), "hdi", 1.0, &mut rng)
                .unwrap()
                .column("hdi")
                .unwrap()
                .null_count(),
            100
        );
        assert!(remove_at_random(&df(), "nope", 0.5, &mut rng).is_err());
    }

    #[test]
    fn biased_removal_takes_highest() {
        let out = remove_biased(&df(), "hdi", 0.2).unwrap();
        let col = out.column("hdi").unwrap();
        assert_eq!(col.null_count(), 20);
        // the 20 highest values (80..99) are gone
        for i in 80..100 {
            assert!(col.is_null_at(i), "row {i} should be removed");
        }
        for i in 0..80 {
            assert!(!col.is_null_at(i));
        }
    }

    #[test]
    fn mean_imputation_fills_numeric() {
        let base = DataFrameBuilder::new()
            .float("x", vec![Some(1.0), None, Some(3.0), None])
            .build()
            .unwrap();
        let out = impute_mean(&base, "x").unwrap();
        assert_eq!(out.column("x").unwrap().null_count(), 0);
        assert_eq!(out.get(1, "x").unwrap(), tabular::Value::Float(2.0));
    }

    #[test]
    fn mode_imputation_fills_categorical() {
        let base = DataFrameBuilder::new()
            .cat("c", vec![Some("a"), Some("a"), Some("b"), None])
            .build()
            .unwrap();
        let out = impute_mean(&base, "c").unwrap();
        assert_eq!(out.get(3, "c").unwrap(), tabular::Value::Str("a".into()));
    }

    #[test]
    fn imputation_of_all_null_column_is_noop() {
        let base = DataFrameBuilder::new()
            .float("x", vec![None, None])
            .build()
            .unwrap();
        let out = impute_mean(&base, "x").unwrap();
        assert_eq!(out.column("x").unwrap().null_count(), 2);
    }
}
