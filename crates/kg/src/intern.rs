//! String interning: the symbol tables behind the columnar triple store.
//!
//! Every entity and predicate name is stored exactly once and referred to by
//! a dense `u32` [`Sym`], so triples become three machine words, lookups
//! become array indexing, and the extraction pipeline never clones a name
//! just to pass it around. The design follows the dictionary encoding used
//! by columnar stores (and by `tabular::EncodedColumn` one crate below).

use std::collections::HashMap;

/// A dense `u32` handle for an interned string.
///
/// Symbols are only meaningful together with the [`Interner`] that issued
/// them; they are assigned contiguously from zero in first-intern order, so
/// they double as indexes into parallel side tables (entity flags, CSR
/// offsets, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// The symbol's position in first-intern order, usable as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` id.
    #[inline]
    pub fn id(self) -> u32 {
        self.0
    }

    /// Builds a symbol from an index previously obtained via [`Sym::index`].
    #[inline]
    pub fn from_index(index: usize) -> Sym {
        Sym(u32::try_from(index).expect("more than u32::MAX interned symbols"))
    }
}

/// A deduplicating string → [`Sym`] table with O(1) two-way lookup.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    map: HashMap<String, Sym>,
    strings: Vec<String>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// An empty interner with space for `capacity` distinct strings.
    pub fn with_capacity(capacity: usize) -> Self {
        Interner {
            map: HashMap::with_capacity(capacity),
            strings: Vec::with_capacity(capacity),
        }
    }

    /// Interns `s`, returning the existing symbol when already present.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Sym::from_index(self.strings.len());
        self.strings.push(s.to_string());
        self.map.insert(s.to_string(), sym);
        sym
    }

    /// The symbol for `s`, if it has been interned.
    #[inline]
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.map.get(s).copied()
    }

    /// The string behind a symbol.
    ///
    /// # Panics
    /// Panics when `sym` was not issued by this interner.
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// All `(symbol, string)` pairs in first-intern order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Sym::from_index(i), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_and_resolves() {
        let mut i = Interner::new();
        let a = i.intern("Germany");
        let b = i.intern("France");
        let a2 = i.intern("Germany");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a), "Germany");
        assert_eq!(i.resolve(b), "France");
        assert_eq!(i.get("Germany"), Some(a));
        assert_eq!(i.get("Atlantis"), None);
    }

    #[test]
    fn symbols_are_dense_in_first_intern_order() {
        let mut i = Interner::with_capacity(3);
        assert!(i.is_empty());
        let syms: Vec<Sym> = ["a", "b", "c"].iter().map(|s| i.intern(s)).collect();
        assert_eq!(
            syms.iter().map(|s| s.index()).collect::<Vec<_>>(),
            [0, 1, 2]
        );
        assert_eq!(
            i.iter().map(|(s, v)| (s.id(), v)).collect::<Vec<_>>(),
            vec![(0, "a"), (1, "b"), (2, "c")]
        );
    }
}
