//! Triples — the atomic facts of the knowledge graph.

use std::fmt;

use tabular::Value;

/// The object position of a triple: either a reference to another entity in
/// the graph or a literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum Object {
    /// A reference to another entity (enables multi-hop extraction).
    Entity(String),
    /// A literal value (number, string, boolean).
    Literal(Value),
}

impl Object {
    /// Convenience constructor for a numeric literal.
    pub fn number(v: f64) -> Self {
        Object::Literal(Value::Float(v))
    }

    /// Convenience constructor for an integer literal.
    pub fn integer(v: i64) -> Self {
        Object::Literal(Value::Int(v))
    }

    /// Convenience constructor for a string literal.
    pub fn text(v: impl Into<String>) -> Self {
        Object::Literal(Value::Str(v.into()))
    }

    /// Convenience constructor for an entity reference.
    pub fn entity(v: impl Into<String>) -> Self {
        Object::Entity(v.into())
    }

    /// Returns the literal value, converting entity references to their name
    /// as a string (useful when an entity-valued property is used directly as
    /// a categorical attribute, e.g. `Currency`).
    pub fn to_value(&self) -> Value {
        match self {
            Object::Entity(e) => Value::Str(e.clone()),
            Object::Literal(v) => v.clone(),
        }
    }

    /// Whether the object references an entity.
    pub fn is_entity(&self) -> bool {
        matches!(self, Object::Entity(_))
    }
}

impl fmt::Display for Object {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Object::Entity(e) => write!(f, "<{e}>"),
            Object::Literal(v) => write!(f, "{v}"),
        }
    }
}

/// A single `(subject, predicate, object)` fact.
#[derive(Debug, Clone, PartialEq)]
pub struct Triple {
    /// The entity the fact is about.
    pub subject: String,
    /// The property name (e.g. `"HDI"`, `"Gross domestic product"`).
    pub predicate: String,
    /// The property value.
    pub object: Object,
}

impl Triple {
    /// Builds a triple.
    pub fn new(subject: impl Into<String>, predicate: impl Into<String>, object: Object) -> Self {
        Triple {
            subject: subject.into(),
            predicate: predicate.into(),
            object,
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}> {} {}", self.subject, self.predicate, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_constructors() {
        assert_eq!(Object::number(2.5).to_value(), Value::Float(2.5));
        assert_eq!(Object::integer(3).to_value(), Value::Int(3));
        assert_eq!(Object::text("x").to_value(), Value::Str("x".into()));
        assert_eq!(
            Object::entity("Germany").to_value(),
            Value::Str("Germany".into())
        );
        assert!(Object::entity("Germany").is_entity());
        assert!(!Object::number(1.0).is_entity());
    }

    #[test]
    fn display_forms() {
        let t = Triple::new("Germany", "HDI", Object::number(0.95));
        assert_eq!(t.to_string(), "<Germany> HDI 0.95");
        let t = Triple::new("US", "leader", Object::entity("POTUS"));
        assert!(t.to_string().contains("<POTUS>"));
    }
}
