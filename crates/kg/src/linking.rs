//! Named Entity Disambiguation (NED): mapping table values to KG entities.
//!
//! The paper uses an off-the-shelf linker (SpaCy) and reports two failure
//! modes that we reproduce faithfully because they are the source of the
//! missing values the IPW machinery has to handle:
//!
//! * **unmatched values** — the table says `"Russian Federation"`, the KG
//!   entity is `"Russia"`; unless an alias is registered the link fails and
//!   every extracted attribute is null for that value;
//! * **ambiguous values** — `"Ronaldo"` could be two different entities; the
//!   linker refuses to guess and the value stays unlinked.

use std::collections::HashMap;

use crate::graph::KnowledgeGraph;

/// The outcome of linking one table value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkOutcome {
    /// The value resolved to a single entity.
    Matched(String),
    /// Several entities matched equally well; no link is made.
    Ambiguous(Vec<String>),
    /// No entity matched.
    NotFound,
}

impl LinkOutcome {
    /// The linked entity name, if uniquely matched.
    pub fn entity(&self) -> Option<&str> {
        match self {
            LinkOutcome::Matched(e) => Some(e.as_str()),
            _ => None,
        }
    }
}

/// Normalises a surface form for fuzzy matching: lowercase, trimmed,
/// punctuation stripped, internal whitespace collapsed.
pub fn normalize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut last_space = true;
    for c in name.chars() {
        if c.is_alphanumeric() {
            out.extend(c.to_lowercase());
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    out.trim_end().to_string()
}

/// A rule-based entity linker over a [`KnowledgeGraph`].
///
/// Matching precedence: exact entity name → registered alias → normalised
/// entity name → normalised alias. A normalised form shared by several
/// distinct entities is reported as [`LinkOutcome::Ambiguous`].
#[derive(Debug, Clone)]
pub struct EntityLinker {
    /// Exact canonical entity names.
    exact: HashMap<String, String>,
    /// Alias surface form -> candidate canonical entities.
    aliases: HashMap<String, Vec<String>>,
    /// Normalised surface form (of entities and aliases) -> candidate entities.
    normalized: HashMap<String, Vec<String>>,
}

fn push_unique(map: &mut HashMap<String, Vec<String>>, key: String, value: &str) {
    let entry = map.entry(key).or_default();
    if !entry.iter().any(|x| x == value) {
        entry.push(value.to_string());
    }
}

impl EntityLinker {
    /// Builds the linker's lookup structures from the graph.
    pub fn new(graph: &KnowledgeGraph) -> Self {
        let mut exact: HashMap<String, String> = HashMap::new();
        let mut aliases: HashMap<String, Vec<String>> = HashMap::new();
        let mut normalized: HashMap<String, Vec<String>> = HashMap::new();
        for e in graph.entities() {
            exact.insert(e.to_string(), e.to_string());
            push_unique(&mut normalized, normalize(e), e);
        }
        for (alias, canonical) in graph.alias_entries() {
            push_unique(&mut aliases, alias.clone(), &canonical);
            push_unique(&mut normalized, normalize(&alias), &canonical);
        }
        EntityLinker {
            exact,
            aliases,
            normalized,
        }
    }

    /// Links a single surface form.
    pub fn link(&self, value: &str) -> LinkOutcome {
        // 1. Exact canonical entity name.
        if let Some(e) = self.exact.get(value) {
            return LinkOutcome::Matched(e.clone());
        }
        // 2. Registered alias (ambiguous when it points at several entities).
        if let Some(candidates) = self.aliases.get(value) {
            return match candidates.len() {
                1 => LinkOutcome::Matched(candidates[0].clone()),
                _ => LinkOutcome::Ambiguous(candidates.clone()),
            };
        }
        // 3. Normalised fallback over entities and aliases.
        let n = normalize(value);
        if n.is_empty() {
            return LinkOutcome::NotFound;
        }
        match self.normalized.get(&n) {
            Some(candidates) if candidates.len() == 1 => {
                LinkOutcome::Matched(candidates[0].clone())
            }
            Some(candidates) if candidates.len() > 1 => LinkOutcome::Ambiguous(candidates.clone()),
            _ => LinkOutcome::NotFound,
        }
    }

    /// Links every value, returning `(value, outcome)` pairs in input order.
    pub fn link_all<'a>(
        &self,
        values: impl IntoIterator<Item = &'a str>,
    ) -> Vec<(String, LinkOutcome)> {
        values
            .into_iter()
            .map(|v| (v.to_string(), self.link(v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::Object;

    fn graph() -> KnowledgeGraph {
        let mut g = KnowledgeGraph::new();
        g.add_fact("Russia", "HDI", Object::number(0.82));
        g.add_fact("United States", "HDI", Object::number(0.92));
        g.add_fact("Cristiano Ronaldo", "net_worth", Object::number(500.0));
        g.add_fact("Ronaldo Nazario", "net_worth", Object::number(150.0));
        g.add_alias("Russian Federation", "Russia");
        g.add_alias("USA", "United States");
        g.add_alias("Ronaldo", "Cristiano Ronaldo");
        g.add_alias("Ronaldo", "Ronaldo Nazario"); // second registration ignored for exact, ambiguous for normalized
        g
    }

    #[test]
    fn normalization() {
        assert_eq!(normalize("  United  States "), "united states");
        assert_eq!(normalize("Côte-d'Ivoire"), "côte d ivoire");
        assert_eq!(normalize("U.S.A."), "u s a");
        assert_eq!(normalize("!!!"), "");
    }

    #[test]
    fn exact_and_alias_matching() {
        let linker = EntityLinker::new(&graph());
        assert_eq!(linker.link("Russia"), LinkOutcome::Matched("Russia".into()));
        assert_eq!(
            linker.link("Russian Federation"),
            LinkOutcome::Matched("Russia".into())
        );
        assert_eq!(
            linker.link("USA"),
            LinkOutcome::Matched("United States".into())
        );
    }

    #[test]
    fn normalized_matching() {
        let linker = EntityLinker::new(&graph());
        assert_eq!(
            linker.link("united states"),
            LinkOutcome::Matched("United States".into())
        );
        assert_eq!(
            linker.link("UNITED STATES"),
            LinkOutcome::Matched("United States".into())
        );
    }

    #[test]
    fn not_found_and_empty() {
        let linker = EntityLinker::new(&graph());
        assert_eq!(linker.link("Atlantis"), LinkOutcome::NotFound);
        assert_eq!(linker.link("   "), LinkOutcome::NotFound);
        assert_eq!(LinkOutcome::NotFound.entity(), None);
    }

    #[test]
    fn ambiguous_values_refuse_to_guess() {
        let linker = EntityLinker::new(&graph());
        // normalized "ronaldo" maps to two canonical entities via aliases
        match linker.link("ronaldo") {
            LinkOutcome::Ambiguous(candidates) => {
                assert_eq!(candidates.len(), 2);
            }
            other => panic!("expected ambiguity, got {other:?}"),
        }
    }

    #[test]
    fn link_all_preserves_order() {
        let linker = EntityLinker::new(&graph());
        let out = linker.link_all(["USA", "Atlantis"]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1.entity(), Some("United States"));
        assert_eq!(out[1].1, LinkOutcome::NotFound);
    }
}
