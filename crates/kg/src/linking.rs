//! Named Entity Disambiguation (NED): mapping table values to KG entities.
//!
//! The paper uses an off-the-shelf linker (SpaCy) and reports two failure
//! modes that we reproduce faithfully because they are the source of the
//! missing values the IPW machinery has to handle:
//!
//! * **unmatched values** — the table says `"Russian Federation"`, the KG
//!   entity is `"Russia"`; unless an alias is registered the link fails and
//!   every extracted attribute is null for that value;
//! * **ambiguous values** — `"Ronaldo"` could be two different entities; the
//!   linker refuses to guess and the value stays unlinked.
//!
//! The linker is id-based: every lookup table maps a surface form to
//! interned [`Sym`]s, the normalised forms of all entities and aliases are
//! computed once when the linker is built (cached on the graph — see
//! [`KnowledgeGraph::linker`]), and [`EntityLinker::link_id`] resolves a
//! value without cloning a single candidate `String`.

use std::collections::HashMap;

use crate::graph::KnowledgeGraph;
use crate::intern::Sym;

/// The outcome of linking one table value, as owned names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkOutcome {
    /// The value resolved to a single entity.
    Matched(String),
    /// Several entities matched equally well; no link is made.
    Ambiguous(Vec<String>),
    /// No entity matched.
    NotFound,
}

impl LinkOutcome {
    /// The linked entity name, if uniquely matched.
    pub fn entity(&self) -> Option<&str> {
        match self {
            LinkOutcome::Matched(e) => Some(e.as_str()),
            _ => None,
        }
    }
}

/// The outcome of linking one table value, as borrowed symbols — the
/// allocation-free mirror of [`LinkOutcome`] used by the extraction hot
/// path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkId<'a> {
    /// The value resolved to a single symbol.
    Matched(Sym),
    /// Several symbols matched equally well; no link is made.
    Ambiguous(&'a [Sym]),
    /// No symbol matched.
    NotFound,
}

/// Normalises a surface form for fuzzy matching: lowercase, trimmed,
/// punctuation stripped, internal whitespace collapsed.
pub fn normalize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut last_space = true;
    for c in name.chars() {
        if c.is_alphanumeric() {
            // Lowercasing can expand to several chars, some of them
            // non-alphanumeric (e.g. 'İ' -> 'i' + combining dot); keep only
            // the alphanumeric ones so normalisation is idempotent.
            for lc in c.to_lowercase().filter(|lc| lc.is_alphanumeric()) {
                out.push(lc);
                last_space = false;
            }
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    out.trim_end().to_string()
}

/// A rule-based entity linker over a [`KnowledgeGraph`].
///
/// Matching precedence: exact entity name → registered alias → normalised
/// entity name → normalised alias. A normalised form shared by several
/// distinct entities is reported as ambiguous.
#[derive(Debug, Clone)]
pub struct EntityLinker {
    /// Symbol index -> name, for materialising [`LinkOutcome`]s.
    names: Vec<String>,
    /// Exact canonical entity names.
    exact: HashMap<String, Sym>,
    /// Alias surface form -> candidate canonical symbols.
    aliases: HashMap<String, Vec<Sym>>,
    /// Normalised surface form (of entities and aliases) -> candidates.
    normalized: HashMap<String, Vec<Sym>>,
}

fn push_unique(map: &mut HashMap<String, Vec<Sym>>, key: String, value: Sym) {
    let entry = map.entry(key).or_default();
    if !entry.contains(&value) {
        entry.push(value);
    }
}

impl EntityLinker {
    /// Builds the linker's lookup structures from the graph. All normalised
    /// forms are computed here, once; prefer [`KnowledgeGraph::linker`],
    /// which caches the built linker on the graph.
    pub fn new(graph: &KnowledgeGraph) -> Self {
        let names: Vec<String> = graph
            .symbols()
            .iter()
            .map(|(_, name)| name.to_string())
            .collect();
        let mut exact: HashMap<String, Sym> = HashMap::with_capacity(graph.n_entities());
        let mut aliases: HashMap<String, Vec<Sym>> = HashMap::new();
        let mut normalized: HashMap<String, Vec<Sym>> = HashMap::with_capacity(graph.n_entities());
        for sym in graph.entity_ids() {
            let name = &names[sym.index()];
            exact.insert(name.clone(), sym);
            push_unique(&mut normalized, normalize(name), sym);
        }
        for (alias, targets) in graph.alias_sym_entries() {
            for &t in targets {
                push_unique(&mut aliases, alias.to_string(), t);
                push_unique(&mut normalized, normalize(alias), t);
            }
        }
        EntityLinker {
            names,
            exact,
            aliases,
            normalized,
        }
    }

    /// The name behind a linked symbol.
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Links a single surface form, returning symbols. No allocation.
    pub fn link_id(&self, value: &str) -> LinkId<'_> {
        // 1. Exact canonical entity name.
        if let Some(&sym) = self.exact.get(value) {
            return LinkId::Matched(sym);
        }
        // 2. Registered alias (ambiguous when it points at several entities).
        if let Some(candidates) = self.aliases.get(value) {
            return match candidates.as_slice() {
                [single] => LinkId::Matched(*single),
                several => LinkId::Ambiguous(several),
            };
        }
        // 3. Normalised fallback over entities and aliases.
        let n = normalize(value);
        if n.is_empty() {
            return LinkId::NotFound;
        }
        match self.normalized.get(&n).map(Vec::as_slice) {
            Some([single]) => LinkId::Matched(*single),
            Some(several) if several.len() > 1 => LinkId::Ambiguous(several),
            _ => LinkId::NotFound,
        }
    }

    /// Links a single surface form, materialising names.
    pub fn link(&self, value: &str) -> LinkOutcome {
        match self.link_id(value) {
            LinkId::Matched(sym) => LinkOutcome::Matched(self.names[sym.index()].clone()),
            LinkId::Ambiguous(syms) => {
                LinkOutcome::Ambiguous(syms.iter().map(|s| self.names[s.index()].clone()).collect())
            }
            LinkId::NotFound => LinkOutcome::NotFound,
        }
    }

    /// Links every value, returning `(value, outcome)` pairs in input order.
    pub fn link_all<'a>(
        &self,
        values: impl IntoIterator<Item = &'a str>,
    ) -> Vec<(String, LinkOutcome)> {
        values
            .into_iter()
            .map(|v| (v.to_string(), self.link(v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::Object;

    fn graph() -> KnowledgeGraph {
        let mut g = KnowledgeGraph::new();
        g.add_fact("Russia", "HDI", Object::number(0.82));
        g.add_fact("United States", "HDI", Object::number(0.92));
        g.add_fact("Cristiano Ronaldo", "net_worth", Object::number(500.0));
        g.add_fact("Ronaldo Nazario", "net_worth", Object::number(150.0));
        g.add_alias("Russian Federation", "Russia");
        g.add_alias("USA", "United States");
        g.add_alias("Ronaldo", "Cristiano Ronaldo");
        g.add_alias("Ronaldo", "Ronaldo Nazario"); // ambiguous from here on
        g
    }

    #[test]
    fn normalization() {
        assert_eq!(normalize("  United  States "), "united states");
        assert_eq!(normalize("Côte-d'Ivoire"), "côte d ivoire");
        assert_eq!(normalize("U.S.A."), "u s a");
        assert_eq!(normalize("!!!"), "");
    }

    #[test]
    fn exact_and_alias_matching() {
        let linker = EntityLinker::new(&graph());
        assert_eq!(linker.link("Russia"), LinkOutcome::Matched("Russia".into()));
        assert_eq!(
            linker.link("Russian Federation"),
            LinkOutcome::Matched("Russia".into())
        );
        assert_eq!(
            linker.link("USA"),
            LinkOutcome::Matched("United States".into())
        );
    }

    #[test]
    fn normalized_matching() {
        let linker = EntityLinker::new(&graph());
        assert_eq!(
            linker.link("united states"),
            LinkOutcome::Matched("United States".into())
        );
        assert_eq!(
            linker.link("UNITED STATES"),
            LinkOutcome::Matched("United States".into())
        );
    }

    #[test]
    fn not_found_and_empty() {
        let linker = EntityLinker::new(&graph());
        assert_eq!(linker.link("Atlantis"), LinkOutcome::NotFound);
        assert_eq!(linker.link("   "), LinkOutcome::NotFound);
        assert_eq!(LinkOutcome::NotFound.entity(), None);
    }

    #[test]
    fn ambiguous_values_refuse_to_guess() {
        let linker = EntityLinker::new(&graph());
        // normalized "ronaldo" maps to two canonical entities via aliases
        match linker.link("ronaldo") {
            LinkOutcome::Ambiguous(candidates) => {
                assert_eq!(candidates.len(), 2);
            }
            other => panic!("expected ambiguity, got {other:?}"),
        }
    }

    #[test]
    fn link_id_matches_link() {
        let g = graph();
        let linker = g.linker();
        match linker.link_id("USA") {
            LinkId::Matched(sym) => assert_eq!(linker.name(sym), "United States"),
            other => panic!("expected match, got {other:?}"),
        }
        assert!(matches!(linker.link_id("Ronaldo"), LinkId::Ambiguous(c) if c.len() == 2));
        assert_eq!(linker.link_id("Atlantis"), LinkId::NotFound);
        // the cached linker is the same object on repeated calls
        assert!(std::ptr::eq(g.linker(), linker));
    }

    #[test]
    fn link_all_preserves_order() {
        let linker = EntityLinker::new(&graph());
        let out = linker.link_all(["USA", "Atlantis"]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1.entity(), Some("United States"));
        assert_eq!(out[1].1, LinkOutcome::NotFound);
    }
}
