//! The class of aggregate queries the paper explains.
//!
//! A query `SELECT T, agg(O) FROM D WHERE C GROUP BY T` is captured by
//! [`AggregateQuery`]: an exposure (grouping) attribute `T`, an outcome
//! (aggregated) attribute `O`, a context predicate `C`, and the aggregation
//! function. Executing the query produces the per-group view the analyst sees
//! (Figure 1 of the paper).

use crate::aggregate::AggFn;
use crate::dataframe::DataFrame;
use crate::error::{Result, TabularError};
use crate::expr::Predicate;
use crate::groupby::group_aggregate;
use crate::value::Value;

/// An aggregate group-by query relating an exposure `T` to an outcome `O`
/// under a context `C`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateQuery {
    /// The grouping attribute `T` (the *exposure*).
    pub exposure: String,
    /// The aggregated attribute `O` (the *outcome*).
    pub outcome: String,
    /// The `WHERE` clause `C` (the *context*).
    pub context: Predicate,
    /// The aggregation function applied to the outcome.
    pub agg: AggFn,
}

impl AggregateQuery {
    /// Builds a query with the trivial context and `avg` aggregation — the
    /// most common shape in the paper (e.g. average salary per country).
    pub fn avg(exposure: impl Into<String>, outcome: impl Into<String>) -> Self {
        AggregateQuery {
            exposure: exposure.into(),
            outcome: outcome.into(),
            context: Predicate::True,
            agg: AggFn::Mean,
        }
    }

    /// Returns a copy of the query with the given context.
    pub fn with_context(mut self, context: Predicate) -> Self {
        self.context = context;
        self
    }

    /// Returns a copy of the query with the given aggregation function.
    pub fn with_agg(mut self, agg: AggFn) -> Self {
        self.agg = agg;
        self
    }

    /// Returns a copy whose context is refined by an additional equality term
    /// — the refinement operation of Algorithm 2.
    pub fn refine(&self, column: impl Into<String>, value: impl Into<crate::value::Value>) -> Self {
        let mut q = self.clone();
        q.context = q.context.and(Predicate::Eq(column.into(), value.into()));
        q
    }

    /// Validates that the referenced columns exist in the frame.
    pub fn validate(&self, df: &DataFrame) -> Result<()> {
        for col in [self.exposure.as_str(), self.outcome.as_str()] {
            if !df.has_column(col) {
                return Err(TabularError::ColumnNotFound(col.to_string()));
            }
        }
        for col in self.context.columns() {
            if !df.has_column(col) {
                return Err(TabularError::ColumnNotFound(col.to_string()));
            }
        }
        Ok(())
    }

    /// Applies only the context (`WHERE` clause) of the query.
    pub fn apply_context(&self, df: &DataFrame) -> Result<DataFrame> {
        self.validate(df)?;
        self.context.apply(df)
    }

    /// Executes the full query, returning one row per exposure group with the
    /// aggregated outcome and the group size.
    pub fn run(&self, df: &DataFrame) -> Result<DataFrame> {
        let filtered = self.apply_context(df)?;
        if filtered.is_empty() {
            return Err(TabularError::Empty(format!(
                "no rows satisfy context {}",
                self.context.describe()
            )));
        }
        group_aggregate(
            &filtered,
            &[self.exposure.as_str()],
            &self.outcome,
            self.agg,
        )
    }

    /// A canonical, collision-free fingerprint of the query, suitable as a
    /// memoization key (`mesa`'s explanation sessions key their prepared and
    /// explained caches on it).
    ///
    /// Two queries produce the same fingerprint iff they are structurally
    /// identical: every string is length-prefixed (so `("ab", "c")` cannot
    /// collide with `("a", "bc")`), every value carries a type tag (so
    /// `Str("1")` differs from `Int(1)`), floats are encoded by their exact
    /// bit pattern, and the predicate tree is serialised with explicit
    /// operator tags and parentheses.
    pub fn fingerprint(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("q:");
        write_token(&mut out, &self.exposure);
        write_token(&mut out, &self.outcome);
        out.push_str(self.agg.name());
        out.push(';');
        write_predicate(&mut out, &self.context);
        out
    }

    /// SQL rendering of the query, used in reports and examples.
    pub fn to_sql(&self, table: &str) -> String {
        let where_clause = if self.context.is_trivial() {
            String::new()
        } else {
            format!("\nWHERE {}", self.context.describe())
        };
        format!(
            "SELECT {exp}, {agg}({out})\nFROM {table}{where_clause}\nGROUP BY {exp}",
            exp = self.exposure,
            agg = self.agg.name(),
            out = self.outcome,
        )
    }
}

/// Length-prefixes a string so adjacent tokens cannot merge ambiguously.
fn write_token(out: &mut String, s: &str) {
    out.push_str(&s.len().to_string());
    out.push(':');
    out.push_str(s);
    out.push(';');
}

/// Type-tagged canonical encoding of a value: nulls, exact float bits, and
/// length-prefixed strings all stay distinguishable.
fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push('n'),
        Value::Int(i) => {
            out.push('i');
            out.push_str(&i.to_string());
        }
        Value::Float(f) => {
            out.push('f');
            out.push_str(&format!("{:016x}", f.to_bits()));
        }
        Value::Bool(b) => out.push(if *b { 'B' } else { 'b' }),
        Value::Str(s) => {
            out.push('s');
            write_token(out, s);
        }
    }
}

/// One comparison leaf: `tag(column;values)`.
fn write_leaf(out: &mut String, tag: char, c: &str, vs: &[&Value]) {
    out.push(tag);
    out.push('(');
    write_token(out, c);
    for v in vs {
        write_value(out, v);
    }
    out.push(')');
}

/// Canonical pre-order serialisation of a predicate tree.
fn write_predicate(out: &mut String, p: &Predicate) {
    match p {
        Predicate::True => out.push('T'),
        Predicate::Eq(c, v) => write_leaf(out, '=', c, &[v]),
        Predicate::Ne(c, v) => write_leaf(out, '!', c, &[v]),
        Predicate::Lt(c, v) => write_leaf(out, '<', c, &[v]),
        Predicate::Le(c, v) => write_leaf(out, 'l', c, &[v]),
        Predicate::Gt(c, v) => write_leaf(out, '>', c, &[v]),
        Predicate::Ge(c, v) => write_leaf(out, 'g', c, &[v]),
        Predicate::In(c, vs) => write_leaf(out, 'I', c, &vs.iter().collect::<Vec<_>>()),
        Predicate::IsNull(c) => write_leaf(out, '0', c, &[]),
        Predicate::NotNull(c) => write_leaf(out, '1', c, &[]),
        Predicate::And(a, b) => {
            out.push_str("A(");
            write_predicate(out, a);
            write_predicate(out, b);
            out.push(')');
        }
        Predicate::Or(a, b) => {
            out.push_str("O(");
            write_predicate(out, a);
            write_predicate(out, b);
            out.push(')');
        }
        Predicate::Not(a) => {
            out.push_str("N(");
            write_predicate(out, a);
            out.push(')');
        }
    }
}

impl std::fmt::Display for AggregateQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_sql("D"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataframe::DataFrameBuilder;
    use crate::value::Value;

    fn so() -> DataFrame {
        DataFrameBuilder::new()
            .cat(
                "country",
                vec![Some("DE"), Some("DE"), Some("US"), Some("FR"), Some("US")],
            )
            .cat(
                "continent",
                vec![
                    Some("Europe"),
                    Some("Europe"),
                    Some("NA"),
                    Some("Europe"),
                    Some("NA"),
                ],
            )
            .float(
                "salary",
                vec![Some(60.0), Some(70.0), Some(100.0), Some(50.0), Some(120.0)],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn avg_query_runs() {
        let q = AggregateQuery::avg("country", "salary");
        let out = q.run(&so()).unwrap();
        assert_eq!(out.n_rows(), 3);
        assert_eq!(out.get(0, "avg(salary)").unwrap(), Value::Float(65.0));
        assert_eq!(out.get(1, "avg(salary)").unwrap(), Value::Float(110.0));
    }

    #[test]
    fn context_restricts_groups() {
        let q = AggregateQuery::avg("country", "salary")
            .with_context(Predicate::eq("continent", "Europe"));
        let out = q.run(&so()).unwrap();
        assert_eq!(out.n_rows(), 2);
    }

    #[test]
    fn refine_adds_condition() {
        let q = AggregateQuery::avg("country", "salary");
        let r = q.refine("continent", "Europe");
        assert_eq!(r.context.describe(), "continent = Europe");
        let r2 = r.refine("country", "DE");
        assert!(r2.context.describe().contains("AND"));
    }

    #[test]
    fn validate_missing_columns() {
        let q = AggregateQuery::avg("country", "nope");
        assert!(q.validate(&so()).is_err());
        let q = AggregateQuery::avg("country", "salary").with_context(Predicate::eq("ghost", 1));
        assert!(q.run(&so()).is_err());
    }

    #[test]
    fn empty_context_result_is_error() {
        let q = AggregateQuery::avg("country", "salary")
            .with_context(Predicate::eq("continent", "Antarctica"));
        assert!(matches!(q.run(&so()), Err(TabularError::Empty(_))));
    }

    #[test]
    fn sql_rendering() {
        let q = AggregateQuery::avg("Country", "Salary")
            .with_context(Predicate::eq("Continent", "Europe"));
        let sql = q.to_sql("SO");
        assert!(sql.contains("SELECT Country, avg(Salary)"));
        assert!(sql.contains("WHERE Continent = Europe"));
        assert!(sql.contains("GROUP BY Country"));
        assert!(format!("{q}").contains("FROM D"));
        let plain = AggregateQuery::avg("a", "b").to_sql("T");
        assert!(!plain.contains("WHERE"));
    }

    #[test]
    fn fingerprint_is_canonical_and_collision_free() {
        let q = AggregateQuery::avg("country", "salary");
        // stable for identical queries
        assert_eq!(q.fingerprint(), q.clone().fingerprint());
        // every component is load-bearing
        assert_ne!(
            q.fingerprint(),
            AggregateQuery::avg("salary", "country").fingerprint()
        );
        assert_ne!(
            q.fingerprint(),
            q.clone().with_agg(AggFn::Max).fingerprint()
        );
        assert_ne!(
            q.fingerprint(),
            q.clone()
                .with_context(Predicate::eq("continent", "Europe"))
                .fingerprint()
        );
        // string boundaries cannot merge: ("ab","c") vs ("a","bc")
        assert_ne!(
            AggregateQuery::avg("ab", "c").fingerprint(),
            AggregateQuery::avg("a", "bc").fingerprint()
        );
        // values carry type tags: Str("1") vs Int(1) vs Float(1.0) vs Bool
        let with = |v: Value| {
            AggregateQuery::avg("c", "o")
                .with_context(Predicate::Eq("x".into(), v))
                .fingerprint()
        };
        let fps = [
            with(Value::Str("1".into())),
            with(Value::Int(1)),
            with(Value::Float(1.0)),
            with(Value::Bool(true)),
            with(Value::Null),
        ];
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "{i} vs {j}");
            }
        }
        // predicate structure is explicit: And(a,b) vs Or(a,b), operator kinds
        let a = Predicate::eq("x", 1);
        let b = Predicate::eq("y", 2);
        let and = AggregateQuery::avg("c", "o")
            .with_context(a.clone().and(b.clone()))
            .fingerprint();
        let or = AggregateQuery::avg("c", "o")
            .with_context(a.clone().or(b.clone()))
            .fingerprint();
        assert_ne!(and, or);
        let lt = AggregateQuery::avg("c", "o")
            .with_context(Predicate::Lt("x".into(), Value::Int(1)))
            .fingerprint();
        let le = AggregateQuery::avg("c", "o")
            .with_context(Predicate::Le("x".into(), Value::Int(1)))
            .fingerprint();
        assert_ne!(lt, le);
        // In with two values differs from two chained Eq terms
        let in_p = AggregateQuery::avg("c", "o")
            .with_context(Predicate::In(
                "x".into(),
                vec![Value::Int(1), Value::Int(2)],
            ))
            .fingerprint();
        assert_ne!(in_p, and);
        // refinement produces a distinct, deterministic fingerprint
        let q3 = AggregateQuery::avg("c", "o").refine("x", 1);
        assert_eq!(q3.fingerprint(), q3.clone().fingerprint());
        assert_ne!(
            q3.fingerprint(),
            AggregateQuery::avg("c", "o").fingerprint()
        );
    }

    #[test]
    fn with_agg_changes_function() {
        let q = AggregateQuery::avg("country", "salary").with_agg(AggFn::Max);
        let out = q.run(&so()).unwrap();
        assert_eq!(out.get(1, "max(salary)").unwrap(), Value::Float(120.0));
    }
}
