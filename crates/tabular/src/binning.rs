//! Discretisation of numeric columns.
//!
//! The information-theoretic estimators in MESA operate over discrete data, so
//! numeric attributes — outcomes, and extracted properties like GDP — are
//! binned first (the paper: "To handle a numerical exposure, one may bin this
//! attribute"; "For simplicity, numerical attributes are assumed to be
//! binned").

use crate::column::Column;
use crate::dataframe::DataFrame;
use crate::error::{Result, TabularError};

/// The binning strategy for numeric columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinStrategy {
    /// Bins of equal value width between the column min and max.
    EqualWidth,
    /// Bins holding (approximately) equal numbers of rows (quantile bins).
    EqualFrequency,
}

/// Bins a numeric column into `n_bins` integer-coded bins (0-based), keeping
/// nulls as nulls. Non-numeric columns are returned unchanged (they are
/// already discrete).
pub fn bin_column(column: &Column, n_bins: usize, strategy: BinStrategy) -> Result<Column> {
    if n_bins == 0 {
        return Err(TabularError::InvalidArgument(
            "n_bins must be positive".into(),
        ));
    }
    if !column.dtype().is_numeric() {
        return Ok(column.clone());
    }
    let values = column.to_f64();
    let present: Vec<f64> = values.iter().copied().flatten().collect();
    if present.is_empty() {
        return Ok(Column::from_i64(column.name(), vec![None; column.len()]));
    }
    let edges = bin_edges(&present, n_bins, strategy);
    let binned: Vec<Option<i64>> = values
        .iter()
        .map(|v| v.map(|v| assign_bin(v, &edges) as i64))
        .collect();
    Ok(Column::from_i64(column.name(), binned))
}

/// Computes the interior bin edges (length `n_bins - 1`, sorted ascending).
fn bin_edges(present: &[f64], n_bins: usize, strategy: BinStrategy) -> Vec<f64> {
    match strategy {
        BinStrategy::EqualWidth => {
            let min = present.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = present.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if min == max {
                return Vec::new();
            }
            let width = (max - min) / n_bins as f64;
            (1..n_bins).map(|i| min + width * i as f64).collect()
        }
        BinStrategy::EqualFrequency => {
            let mut sorted = present.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let n = sorted.len();
            let mut edges: Vec<f64> = (1..n_bins)
                .map(|i| {
                    let pos = (i as f64 / n_bins as f64) * (n - 1) as f64;
                    let lo = pos.floor() as usize;
                    let hi = pos.ceil() as usize;
                    let frac = pos - lo as f64;
                    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
                })
                .collect();
            edges.dedup_by(|a, b| a == b);
            edges
        }
    }
}

/// Returns the 0-based bin index of a value given interior edges.
fn assign_bin(value: f64, edges: &[f64]) -> usize {
    edges.iter().take_while(|&&e| value > e).count()
}

/// Bins every numeric column of the frame (in place on a clone), leaving
/// categorical/boolean columns and any column named in `exclude` untouched.
///
/// Columns with at most `n_bins` distinct values are also left untouched —
/// binning them would only lose information.
pub fn bin_frame(
    df: &DataFrame,
    n_bins: usize,
    strategy: BinStrategy,
    exclude: &[&str],
) -> Result<DataFrame> {
    let mut out = df.clone();
    for col in df.columns() {
        if exclude.contains(&col.name()) || !col.dtype().is_numeric() {
            continue;
        }
        if col.n_distinct() <= n_bins {
            continue;
        }
        out.set_column(bin_column(col, n_bins, strategy)?)?;
    }
    Ok(out)
}

/// Quantile helper: the q-quantile (0..=1) of the non-null numeric view of a
/// column, using linear interpolation. Returns `None` when empty.
pub fn quantile(column: &Column, q: f64) -> Option<f64> {
    if !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut present: Vec<f64> = column.to_f64().into_iter().flatten().collect();
    if present.is_empty() {
        return None;
    }
    present.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (present.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(present[lo] * (1.0 - frac) + present[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataframe::DataFrameBuilder;
    use crate::value::{DType, Value};

    #[test]
    fn equal_width_binning() {
        let c = Column::from_f64(
            "x",
            vec![Some(0.0), Some(2.5), Some(5.0), Some(7.5), Some(10.0), None],
        );
        let b = bin_column(&c, 4, BinStrategy::EqualWidth).unwrap();
        assert_eq!(b.dtype(), DType::Int);
        assert_eq!(b.get(0).unwrap(), Value::Int(0));
        assert_eq!(b.get(2).unwrap(), Value::Int(1)); // 5.0 lands in bin 1 (edge-exclusive on >)
        assert_eq!(b.get(4).unwrap(), Value::Int(3));
        assert!(b.is_null_at(5));
    }

    #[test]
    fn equal_frequency_binning_balances_counts() {
        let vals: Vec<Option<f64>> = (0..100).map(|i| Some(i as f64)).collect();
        let c = Column::from_f64("x", vals);
        let b = bin_column(&c, 4, BinStrategy::EqualFrequency).unwrap();
        let enc = b.encode();
        assert_eq!(enc.cardinality(), 4);
        // each bin should hold about 25 values
        let mut counts = vec![0usize; 4];
        for code in enc.iter_codes().flatten() {
            counts[code as usize] += 1;
        }
        for c in counts {
            assert!((20..=30).contains(&c), "unbalanced bin: {c}");
        }
    }

    #[test]
    fn constant_column_single_bin() {
        let c = Column::from_f64("x", vec![Some(3.0); 5]);
        let b = bin_column(&c, 4, BinStrategy::EqualWidth).unwrap();
        assert_eq!(b.n_distinct(), 1);
    }

    #[test]
    fn all_null_column() {
        let c = Column::from_f64("x", vec![None, None]);
        let b = bin_column(&c, 4, BinStrategy::EqualWidth).unwrap();
        assert_eq!(b.null_count(), 2);
    }

    #[test]
    fn categorical_passthrough_and_zero_bins() {
        let c = Column::from_str_values("c", vec![Some("a"), Some("b")]);
        let b = bin_column(&c, 4, BinStrategy::EqualWidth).unwrap();
        assert_eq!(b, c);
        assert!(bin_column(&c, 0, BinStrategy::EqualWidth).is_err());
    }

    #[test]
    fn bin_frame_excludes_and_skips_small_domains() {
        let df = DataFrameBuilder::new()
            .float("big", (0..50).map(|i| Some(i as f64)).collect())
            .int("small", (0..50).map(|i| Some(i % 3)).collect())
            .float("keep", (0..50).map(|i| Some(i as f64 * 2.0)).collect())
            .cat("cat", (0..50).map(|_| Some("x")).collect())
            .build()
            .unwrap();
        let out = bin_frame(&df, 5, BinStrategy::EqualFrequency, &["keep"]).unwrap();
        assert_eq!(out.column("big").unwrap().n_distinct(), 5);
        assert_eq!(out.column("small").unwrap().n_distinct(), 3); // untouched (<= n_bins)
        assert_eq!(out.column("keep").unwrap().n_distinct(), 50); // excluded
        assert_eq!(out.column("cat").unwrap().dtype(), DType::Categorical);
    }

    #[test]
    fn quantiles() {
        let c = Column::from_f64("x", vec![Some(1.0), Some(2.0), Some(3.0), Some(4.0), None]);
        assert_eq!(quantile(&c, 0.0), Some(1.0));
        assert_eq!(quantile(&c, 1.0), Some(4.0));
        assert_eq!(quantile(&c, 0.5), Some(2.5));
        assert_eq!(quantile(&c, 2.0), None);
        let empty = Column::from_f64("x", vec![None]);
        assert_eq!(quantile(&empty, 0.5), None);
    }

    #[test]
    fn monotone_binning_property() {
        // larger values never get smaller bin indices
        let vals: Vec<Option<f64>> = vec![Some(1.0), Some(5.0), Some(2.0), Some(9.0), Some(7.0)];
        let c = Column::from_f64("x", vals.clone());
        for strategy in [BinStrategy::EqualWidth, BinStrategy::EqualFrequency] {
            let b = bin_column(&c, 3, strategy).unwrap();
            let bins: Vec<i64> = (0..b.len())
                .map(|i| b.get(i).unwrap().as_i64().unwrap())
                .collect();
            for i in 0..vals.len() {
                for j in 0..vals.len() {
                    if vals[i].unwrap() <= vals[j].unwrap() {
                        assert!(bins[i] <= bins[j]);
                    }
                }
            }
        }
    }
}
