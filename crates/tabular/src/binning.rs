//! Discretisation of numeric columns.
//!
//! The information-theoretic estimators in MESA operate over discrete data, so
//! numeric attributes — outcomes, and extracted properties like GDP — are
//! binned first (the paper: "To handle a numerical exposure, one may bin this
//! attribute"; "For simplicity, numerical attributes are assumed to be
//! binned").

use std::borrow::Cow;

use crate::column::{Column, ColumnData, EncodedColumn};
use crate::dataframe::DataFrame;
use crate::error::{Result, TabularError};

/// The binning strategy for numeric columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinStrategy {
    /// Bins of equal value width between the column min and max.
    EqualWidth,
    /// Bins holding (approximately) equal numbers of rows (quantile bins).
    EqualFrequency,
}

/// Linear interpolation at fraction `q ∈ [0, 1]` over an ascending-sorted,
/// non-empty slice — the one quantile kernel shared by [`quantile`] and the
/// equal-frequency edge computation.
fn interpolate_sorted(sorted: &[f64], q: f64) -> f64 {
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// The numeric cells of a column as a slice: borrowed straight from the
/// backing storage for float columns (the common case after KG extraction —
/// no copy at all), materialised once for int/bool columns.
fn f64_view(column: &Column) -> Cow<'_, [Option<f64>]> {
    match column.data() {
        ColumnData::Float(v) => Cow::Borrowed(v.as_slice()),
        _ => Cow::Owned(column.to_f64()),
    }
}

/// Bins a numeric column into `n_bins` integer-coded bins (0-based), keeping
/// nulls as nulls. Non-numeric columns are returned unchanged (they are
/// already discrete).
pub fn bin_column(column: &Column, n_bins: usize, strategy: BinStrategy) -> Result<Column> {
    Ok(bin_column_impl(column, n_bins, strategy, false)?.0)
}

/// Like [`bin_column`], additionally returning the discrete encoding of the
/// binned column when binning actually happened.
///
/// The encoding is built directly from the bin indices while they are
/// assigned (a dense first-appearance remap over at most `n_bins` slots), and
/// is bit-identical to what `binned.encode()` would produce — but without
/// re-rendering every cell to a string and re-hashing it. MESA's
/// `prepare_query` threads these encodings straight into its encoded frame so
/// the encode step never touches binned columns again.
pub fn bin_column_encoded(
    column: &Column,
    n_bins: usize,
    strategy: BinStrategy,
) -> Result<(Column, Option<EncodedColumn>)> {
    bin_column_impl(column, n_bins, strategy, true)
}

/// Shared binning core; `want_codes` controls whether the encoding is built
/// alongside the binned column (callers that discard it skip the cost).
fn bin_column_impl(
    column: &Column,
    n_bins: usize,
    strategy: BinStrategy,
    want_codes: bool,
) -> Result<(Column, Option<EncodedColumn>)> {
    if n_bins == 0 {
        return Err(TabularError::InvalidArgument(
            "n_bins must be positive".into(),
        ));
    }
    if !column.dtype().is_numeric() {
        return Ok((column.clone(), None));
    }
    let values = f64_view(column);
    let edges = match bin_edges(&values, n_bins, strategy) {
        Some(edges) => edges,
        // Entirely missing: every row is null in the binned column too.
        None => {
            let out = Column::from_i64(column.name(), vec![None; column.len()]);
            let encoded = want_codes.then(|| {
                EncodedColumn::from_option_codes(
                    std::iter::repeat_n(None, column.len()),
                    Vec::new(),
                )
            });
            return Ok((out, encoded));
        }
    };
    // Assign bins and build the first-appearance code remap in one pass.
    let mut binned: Vec<Option<i64>> = Vec::with_capacity(values.len());
    let mut codes: Vec<Option<u32>> = Vec::with_capacity(if want_codes { values.len() } else { 0 });
    let mut remap: Vec<Option<u32>> = vec![None; edges.len() + 1];
    let mut labels: Vec<String> = Vec::new();
    for v in values.iter() {
        match v {
            None => {
                binned.push(None);
                if want_codes {
                    codes.push(None);
                }
            }
            Some(v) => {
                let bin = assign_bin(*v, &edges);
                binned.push(Some(bin as i64));
                if want_codes {
                    let slot = &mut remap[bin];
                    let code = match *slot {
                        Some(code) => code,
                        None => {
                            let code = labels.len() as u32;
                            labels.push((bin as i64).to_string());
                            *slot = Some(code);
                            code
                        }
                    };
                    codes.push(Some(code));
                }
            }
        }
    }
    let encoded = want_codes.then(|| EncodedColumn::from_option_codes(codes, labels));
    Ok((Column::from_i64(column.name(), binned), encoded))
}

/// Computes the interior bin edges (length `≤ n_bins - 1`, sorted ascending)
/// of a numeric view, or `None` when it has no present values.
///
/// Equal-width edges come from a single borrowed min/max scan (no gather at
/// all); the equal-frequency path gathers and sorts the present values once
/// and interpolates through [`interpolate_sorted`].
fn bin_edges(values: &[Option<f64>], n_bins: usize, strategy: BinStrategy) -> Option<Vec<f64>> {
    match strategy {
        BinStrategy::EqualWidth => {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut any = false;
            for v in values.iter().flatten() {
                min = min.min(*v);
                max = max.max(*v);
                any = true;
            }
            if !any {
                return None;
            }
            if min == max {
                return Some(Vec::new());
            }
            let width = (max - min) / n_bins as f64;
            Some((1..n_bins).map(|i| min + width * i as f64).collect())
        }
        BinStrategy::EqualFrequency => {
            let mut sorted: Vec<f64> = values.iter().copied().flatten().collect();
            if sorted.is_empty() {
                return None;
            }
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let mut edges: Vec<f64> = (1..n_bins)
                .map(|i| interpolate_sorted(&sorted, i as f64 / n_bins as f64))
                .collect();
            edges.dedup_by(|a, b| a == b);
            Some(edges)
        }
    }
}

/// Returns the 0-based bin index of a value given interior edges.
fn assign_bin(value: f64, edges: &[f64]) -> usize {
    edges.iter().take_while(|&&e| value > e).count()
}

/// Bins every numeric column of the frame (in place on a clone), leaving
/// categorical/boolean columns and any column named in `exclude` untouched.
///
/// Columns with at most `n_bins` distinct values are also left untouched —
/// binning them would only lose information.
pub fn bin_frame(
    df: &DataFrame,
    n_bins: usize,
    strategy: BinStrategy,
    exclude: &[&str],
) -> Result<DataFrame> {
    Ok(bin_frame_impl(df, n_bins, strategy, exclude, false)?.0)
}

/// Like [`bin_frame`], additionally returning a discrete encoding for every
/// *numeric* non-excluded column: the bin codes emitted while binning, or —
/// when the column was left untouched because its domain already fits in
/// `n_bins` — an ordinary [`Column::encode`] pass (cheap at that
/// cardinality). Callers building an encoded view of the result (MESA's
/// `prepare_query`) reuse these instead of re-encoding from scratch.
pub fn bin_frame_encoded(
    df: &DataFrame,
    n_bins: usize,
    strategy: BinStrategy,
    exclude: &[&str],
) -> Result<(DataFrame, Vec<(String, EncodedColumn)>)> {
    bin_frame_impl(df, n_bins, strategy, exclude, true)
}

/// Whether a numeric column has more than `n_bins` distinct non-null values,
/// using the same key semantics as [`Column::encode`] (exact `i64`/`bool`
/// values; floats by canonical bit pattern, `-0.0 ≡ 0.0`) but without
/// rendering a single label — the scan stops as soon as the threshold is
/// exceeded, so high-cardinality columns (the ones that will be binned) never
/// pay for a full dictionary encode just to decide that.
fn distinct_exceeds(column: &Column, n_bins: usize) -> bool {
    fn over<K: std::hash::Hash + Eq, I: Iterator<Item = Option<K>>>(cells: I, n: usize) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(n + 1);
        for cell in cells.flatten() {
            if seen.insert(cell) && seen.len() > n {
                return true;
            }
        }
        false
    }
    match column.data() {
        ColumnData::Int(v) => over(v.iter().copied(), n_bins),
        ColumnData::Bool(v) => over(v.iter().copied(), n_bins),
        ColumnData::Float(v) => over(
            v.iter().map(|x| {
                x.map(|x| {
                    if x == 0.0 {
                        0.0f64.to_bits()
                    } else {
                        x.to_bits()
                    }
                })
            }),
            n_bins,
        ),
        // Non-numeric columns never reach this check.
        ColumnData::Categorical { .. } => false,
    }
}

/// Shared frame-binning core; when `want_codes` is false no encodings are
/// built or collected (plain [`bin_frame`] callers skip that cost entirely).
fn bin_frame_impl(
    df: &DataFrame,
    n_bins: usize,
    strategy: BinStrategy,
    exclude: &[&str],
    want_codes: bool,
) -> Result<(DataFrame, Vec<(String, EncodedColumn)>)> {
    let mut out = df.clone();
    let mut encodings: Vec<(String, EncodedColumn)> = Vec::new();
    for col in df.columns() {
        if exclude.contains(&col.name()) || !col.dtype().is_numeric() {
            continue;
        }
        if !distinct_exceeds(col, n_bins) {
            // Domain already fits: the column stays unbinned, and (when
            // requested) its ordinary encoding — cheap at this cardinality —
            // is exactly its final encoding.
            if want_codes {
                encodings.push((col.name().to_string(), col.encode()));
            }
            continue;
        }
        let (binned, bin_codes) = bin_column_impl(col, n_bins, strategy, want_codes)?;
        if let Some(bin_codes) = bin_codes {
            encodings.push((col.name().to_string(), bin_codes));
        }
        out.set_column(binned)?;
    }
    Ok((out, encodings))
}

/// Quantile helper: the q-quantile (0..=1) of the non-null numeric view of a
/// column, using linear interpolation. Returns `None` when empty.
pub fn quantile(column: &Column, q: f64) -> Option<f64> {
    if !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut present: Vec<f64> = f64_view(column).iter().copied().flatten().collect();
    if present.is_empty() {
        return None;
    }
    present.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Some(interpolate_sorted(&present, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataframe::DataFrameBuilder;
    use crate::value::{DType, Value};

    #[test]
    fn equal_width_binning() {
        let c = Column::from_f64(
            "x",
            vec![Some(0.0), Some(2.5), Some(5.0), Some(7.5), Some(10.0), None],
        );
        let b = bin_column(&c, 4, BinStrategy::EqualWidth).unwrap();
        assert_eq!(b.dtype(), DType::Int);
        assert_eq!(b.get(0).unwrap(), Value::Int(0));
        assert_eq!(b.get(2).unwrap(), Value::Int(1)); // 5.0 lands in bin 1 (edge-exclusive on >)
        assert_eq!(b.get(4).unwrap(), Value::Int(3));
        assert!(b.is_null_at(5));
    }

    #[test]
    fn equal_frequency_binning_balances_counts() {
        let vals: Vec<Option<f64>> = (0..100).map(|i| Some(i as f64)).collect();
        let c = Column::from_f64("x", vals);
        let b = bin_column(&c, 4, BinStrategy::EqualFrequency).unwrap();
        let enc = b.encode();
        assert_eq!(enc.cardinality(), 4);
        // each bin should hold about 25 values
        let mut counts = vec![0usize; 4];
        for code in enc.iter_codes().flatten() {
            counts[code as usize] += 1;
        }
        for c in counts {
            assert!((20..=30).contains(&c), "unbalanced bin: {c}");
        }
    }

    #[test]
    fn constant_column_single_bin() {
        let c = Column::from_f64("x", vec![Some(3.0); 5]);
        let b = bin_column(&c, 4, BinStrategy::EqualWidth).unwrap();
        assert_eq!(b.n_distinct(), 1);
    }

    #[test]
    fn all_null_column() {
        let c = Column::from_f64("x", vec![None, None]);
        let b = bin_column(&c, 4, BinStrategy::EqualWidth).unwrap();
        assert_eq!(b.null_count(), 2);
    }

    #[test]
    fn categorical_passthrough_and_zero_bins() {
        let c = Column::from_str_values("c", vec![Some("a"), Some("b")]);
        let b = bin_column(&c, 4, BinStrategy::EqualWidth).unwrap();
        assert_eq!(b, c);
        assert!(bin_column(&c, 0, BinStrategy::EqualWidth).is_err());
    }

    #[test]
    fn bin_frame_excludes_and_skips_small_domains() {
        let df = DataFrameBuilder::new()
            .float("big", (0..50).map(|i| Some(i as f64)).collect())
            .int("small", (0..50).map(|i| Some(i % 3)).collect())
            .float("keep", (0..50).map(|i| Some(i as f64 * 2.0)).collect())
            .cat("cat", (0..50).map(|_| Some("x")).collect())
            .build()
            .unwrap();
        let out = bin_frame(&df, 5, BinStrategy::EqualFrequency, &["keep"]).unwrap();
        assert_eq!(out.column("big").unwrap().n_distinct(), 5);
        assert_eq!(out.column("small").unwrap().n_distinct(), 3); // untouched (<= n_bins)
        assert_eq!(out.column("keep").unwrap().n_distinct(), 50); // excluded
        assert_eq!(out.column("cat").unwrap().dtype(), DType::Categorical);
    }

    #[test]
    fn quantiles() {
        let c = Column::from_f64("x", vec![Some(1.0), Some(2.0), Some(3.0), Some(4.0), None]);
        assert_eq!(quantile(&c, 0.0), Some(1.0));
        assert_eq!(quantile(&c, 1.0), Some(4.0));
        assert_eq!(quantile(&c, 0.5), Some(2.5));
        assert_eq!(quantile(&c, 2.0), None);
        let empty = Column::from_f64("x", vec![None]);
        assert_eq!(quantile(&empty, 0.5), None);
    }

    #[test]
    fn bin_codes_match_reencoding_the_binned_column() {
        // The encoding emitted while binning must be bit-identical to
        // encoding the binned column from scratch — labels, codes, validity.
        let vals: Vec<Option<f64>> = (0..200)
            .map(|i| {
                if i % 7 == 0 {
                    None
                } else {
                    Some(((i * 37) % 101) as f64)
                }
            })
            .collect();
        let c = Column::from_f64("x", vals);
        for strategy in [BinStrategy::EqualWidth, BinStrategy::EqualFrequency] {
            let (binned, codes) = bin_column_encoded(&c, 5, strategy).unwrap();
            assert_eq!(codes.unwrap(), binned.encode());
        }
        // all-null numeric column
        let empty = Column::from_f64("x", vec![None, None, None]);
        let (binned, codes) = bin_column_encoded(&empty, 4, BinStrategy::EqualWidth).unwrap();
        assert_eq!(codes.unwrap(), binned.encode());
        // categorical passthrough emits no encoding
        let cat = Column::from_str_values("c", vec![Some("a")]);
        let (_, codes) = bin_column_encoded(&cat, 4, BinStrategy::EqualWidth).unwrap();
        assert!(codes.is_none());
    }

    #[test]
    fn bin_frame_encoded_covers_every_numeric_column() {
        let df = DataFrameBuilder::new()
            .float("big", (0..50).map(|i| Some(i as f64)).collect())
            .int("small", (0..50).map(|i| Some(i % 3)).collect())
            .cat("cat", (0..50).map(|_| Some("x")).collect())
            .build()
            .unwrap();
        let (out, encodings) = bin_frame_encoded(&df, 5, BinStrategy::EqualFrequency, &[]).unwrap();
        let names: Vec<&str> = encodings.iter().map(|(n, _)| n.as_str()).collect();
        // both numeric columns get encodings (binned and domain-checked), the
        // categorical one does not
        assert_eq!(names, vec!["big", "small"]);
        for (name, enc) in &encodings {
            assert_eq!(enc, &out.column(name).unwrap().encode(), "{name}");
        }
    }

    #[test]
    fn monotone_binning_property() {
        // larger values never get smaller bin indices
        let vals: Vec<Option<f64>> = vec![Some(1.0), Some(5.0), Some(2.0), Some(9.0), Some(7.0)];
        let c = Column::from_f64("x", vals.clone());
        for strategy in [BinStrategy::EqualWidth, BinStrategy::EqualFrequency] {
            let b = bin_column(&c, 3, strategy).unwrap();
            let bins: Vec<i64> = (0..b.len())
                .map(|i| b.get(i).unwrap().as_i64().unwrap())
                .collect();
            for i in 0..vals.len() {
                for j in 0..vals.len() {
                    if vals[i].unwrap() <= vals[j].unwrap() {
                        assert!(bins[i] <= bins[j]);
                    }
                }
            }
        }
    }
}
