//! The in-memory relational table: an ordered collection of equal-length
//! [`Column`]s.

use std::collections::HashMap;
use std::fmt;

use crate::column::Column;
use crate::error::{Result, TabularError};
use crate::value::Value;

/// A named, ordered collection of equal-length columns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataFrame {
    columns: Vec<Column>,
    index: HashMap<String, usize>,
}

impl DataFrame {
    /// Creates an empty frame with no columns and no rows.
    pub fn new() -> Self {
        DataFrame::default()
    }

    /// Creates a frame from columns, validating that all lengths match and
    /// names are unique.
    pub fn from_columns(columns: Vec<Column>) -> Result<Self> {
        let mut df = DataFrame::new();
        for c in columns {
            df.add_column(c)?;
        }
        Ok(df)
    }

    /// Number of rows (0 if the frame has no columns).
    pub fn n_rows(&self) -> usize {
        self.columns.first().map(|c| c.len()).unwrap_or(0)
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Whether the frame has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows() == 0
    }

    /// Approximate heap footprint in bytes: the sum of
    /// [`Column::approx_bytes`] over all columns. Used by cache byte
    /// budgets.
    pub fn approx_bytes(&self) -> usize {
        self.columns.iter().map(Column::approx_bytes).sum()
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name()).collect()
    }

    /// Whether a column with this name exists.
    pub fn has_column(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Borrows a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.index
            .get(name)
            .map(|&i| &self.columns[i])
            .ok_or_else(|| TabularError::ColumnNotFound(name.to_string()))
    }

    /// Mutably borrows a column by name.
    pub fn column_mut(&mut self, name: &str) -> Result<&mut Column> {
        match self.index.get(name) {
            Some(&i) => Ok(&mut self.columns[i]),
            None => Err(TabularError::ColumnNotFound(name.to_string())),
        }
    }

    /// Iterates all columns in order.
    pub fn columns(&self) -> impl Iterator<Item = &Column> {
        self.columns.iter()
    }

    /// Appends a new column. Its length must match the frame (unless the frame
    /// has no columns yet) and its name must be unique.
    pub fn add_column(&mut self, column: Column) -> Result<()> {
        if self.has_column(column.name()) {
            return Err(TabularError::DuplicateColumn(column.name().to_string()));
        }
        if !self.columns.is_empty() && column.len() != self.n_rows() {
            return Err(TabularError::LengthMismatch {
                expected: self.n_rows(),
                got: column.len(),
            });
        }
        self.index
            .insert(column.name().to_string(), self.columns.len());
        self.columns.push(column);
        Ok(())
    }

    /// Replaces an existing column with the same name, or adds it if absent.
    pub fn set_column(&mut self, column: Column) -> Result<()> {
        if !self.columns.is_empty() && column.len() != self.n_rows() {
            return Err(TabularError::LengthMismatch {
                expected: self.n_rows(),
                got: column.len(),
            });
        }
        match self.index.get(column.name()) {
            Some(&i) => {
                self.columns[i] = column;
                Ok(())
            }
            None => self.add_column(column),
        }
    }

    /// Removes and returns a column.
    pub fn drop_column(&mut self, name: &str) -> Result<Column> {
        let i = *self
            .index
            .get(name)
            .ok_or_else(|| TabularError::ColumnNotFound(name.to_string()))?;
        let col = self.columns.remove(i);
        self.rebuild_index();
        Ok(col)
    }

    fn rebuild_index(&mut self) {
        self.index = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name().to_string(), i))
            .collect();
    }

    /// Returns a new frame containing only the named columns, in the given
    /// order.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame> {
        let mut cols = Vec::with_capacity(names.len());
        for &n in names {
            cols.push(self.column(n)?.clone());
        }
        DataFrame::from_columns(cols)
    }

    /// Returns a new frame with the rows at `indices` (duplicates and
    /// reordering allowed).
    pub fn take(&self, indices: &[usize]) -> DataFrame {
        let columns = self.columns.iter().map(|c| c.take(indices)).collect();
        DataFrame {
            columns,
            index: self.index.clone(),
        }
    }

    /// Returns a new frame keeping rows where `mask` is true.
    pub fn filter_mask(&self, mask: &[bool]) -> Result<DataFrame> {
        if mask.len() != self.n_rows() {
            return Err(TabularError::LengthMismatch {
                expected: self.n_rows(),
                got: mask.len(),
            });
        }
        let indices: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| i)
            .collect();
        Ok(self.take(&indices))
    }

    /// Returns the first `n` rows.
    pub fn head(&self, n: usize) -> DataFrame {
        let indices: Vec<usize> = (0..self.n_rows().min(n)).collect();
        self.take(&indices)
    }

    /// Fetches a single cell.
    pub fn get(&self, row: usize, column: &str) -> Result<Value> {
        self.column(column)?.get(row)
    }

    /// Returns one row as `(column name, value)` pairs.
    pub fn row(&self, i: usize) -> Result<Vec<(String, Value)>> {
        if i >= self.n_rows() {
            return Err(TabularError::RowOutOfBounds {
                index: i,
                len: self.n_rows(),
            });
        }
        self.columns
            .iter()
            .map(|c| Ok((c.name().to_string(), c.get(i)?)))
            .collect()
    }

    /// Vertically stacks another frame with the same schema (same column
    /// names, same order not required).
    pub fn vstack(&mut self, other: &DataFrame) -> Result<()> {
        if self.n_cols() != other.n_cols() {
            return Err(TabularError::LengthMismatch {
                expected: self.n_cols(),
                got: other.n_cols(),
            });
        }
        // Validate first so a failure cannot leave the frame partially stacked.
        for col in &self.columns {
            let o = other.column(col.name())?;
            if o.dtype() != col.dtype() {
                return Err(TabularError::TypeMismatch {
                    column: col.name().to_string(),
                    expected: col.dtype().name(),
                    got: o.dtype().name(),
                });
            }
        }
        for col in &mut self.columns {
            let o = other.column(col.name()).expect("validated above");
            col.append(o)?;
        }
        Ok(())
    }

    /// Returns the row indices that sort the frame by the given column
    /// (ascending; nulls first). Ties keep their original order.
    pub fn argsort_by(&self, column: &str) -> Result<Vec<usize>> {
        let col = self.column(column)?;
        let mut idx: Vec<usize> = (0..col.len()).collect();
        idx.sort_by(|&a, &b| {
            let va = col.get(a).expect("in range");
            let vb = col.get(b).expect("in range");
            va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(idx)
    }

    /// Returns a new frame sorted by the given column (ascending).
    pub fn sort_by(&self, column: &str) -> Result<DataFrame> {
        Ok(self.take(&self.argsort_by(column)?))
    }

    /// Renders the frame as an aligned text table; `max_rows` limits output.
    pub fn to_pretty_string(&self, max_rows: usize) -> String {
        let names = self.column_names();
        let shown = self.n_rows().min(max_rows);
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(shown);
        for i in 0..shown {
            let mut row = Vec::with_capacity(names.len());
            for (j, c) in self.columns.iter().enumerate() {
                let s = c.get(i).map(|v| v.render()).unwrap_or_default();
                widths[j] = widths[j].max(s.len());
                row.push(s);
            }
            cells.push(row);
        }
        let mut out = String::new();
        let header: Vec<String> = names
            .iter()
            .zip(&widths)
            .map(|(n, w)| format!("{n:<w$}", w = *w))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-"),
        );
        out.push('\n');
        for row in cells {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(s, w)| format!("{s:<w$}", w = *w))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
        }
        if self.n_rows() > shown {
            out.push_str(&format!("... ({} more rows)\n", self.n_rows() - shown));
        }
        out
    }
}

impl fmt::Display for DataFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_pretty_string(20))
    }
}

/// Convenience macro-free builder used pervasively in tests and examples.
pub struct DataFrameBuilder {
    df: DataFrame,
    error: Option<TabularError>,
}

impl DataFrameBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        DataFrameBuilder {
            df: DataFrame::new(),
            error: None,
        }
    }

    /// Adds an integer column.
    pub fn int(mut self, name: &str, values: Vec<Option<i64>>) -> Self {
        self.push(Column::from_i64(name, values));
        self
    }

    /// Adds a float column.
    pub fn float(mut self, name: &str, values: Vec<Option<f64>>) -> Self {
        self.push(Column::from_f64(name, values));
        self
    }

    /// Adds a categorical column.
    pub fn cat(mut self, name: &str, values: Vec<Option<&str>>) -> Self {
        self.push(Column::from_str_values(name, values));
        self
    }

    /// Adds a boolean column.
    pub fn boolean(mut self, name: &str, values: Vec<Option<bool>>) -> Self {
        self.push(Column::from_bool(name, values));
        self
    }

    /// Adds an already-built column.
    pub fn column(mut self, column: Column) -> Self {
        self.push(column);
        self
    }

    fn push(&mut self, column: Column) {
        if self.error.is_none() {
            if let Err(e) = self.df.add_column(column) {
                self.error = Some(e);
            }
        }
    }

    /// Finishes the builder.
    pub fn build(self) -> Result<DataFrame> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.df),
        }
    }
}

impl Default for DataFrameBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrameBuilder::new()
            .cat(
                "country",
                vec![Some("DE"), Some("US"), Some("DE"), Some("FR")],
            )
            .float("salary", vec![Some(60.0), Some(90.0), Some(65.0), None])
            .int("age", vec![Some(30), Some(40), Some(35), Some(28)])
            .build()
            .unwrap()
    }

    #[test]
    fn build_and_shape() {
        let df = sample();
        assert_eq!(df.n_rows(), 4);
        assert_eq!(df.n_cols(), 3);
        assert_eq!(df.column_names(), vec!["country", "salary", "age"]);
        assert!(df.has_column("salary"));
        assert!(!df.has_column("missing"));
    }

    #[test]
    fn duplicate_and_mismatched_columns_rejected() {
        let mut df = sample();
        assert!(matches!(
            df.add_column(Column::from_i64("age", vec![Some(1); 4])),
            Err(TabularError::DuplicateColumn(_))
        ));
        assert!(matches!(
            df.add_column(Column::from_i64("x", vec![Some(1); 3])),
            Err(TabularError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn select_take_filter() {
        let df = sample();
        let s = df.select(&["salary", "country"]).unwrap();
        assert_eq!(s.column_names(), vec!["salary", "country"]);
        assert!(df.select(&["nope"]).is_err());

        let t = df.take(&[2, 0]);
        assert_eq!(t.get(0, "country").unwrap(), Value::Str("DE".into()));
        assert_eq!(t.get(0, "salary").unwrap(), Value::Float(65.0));

        let f = df.filter_mask(&[true, false, false, true]).unwrap();
        assert_eq!(f.n_rows(), 2);
        assert_eq!(f.get(1, "country").unwrap(), Value::Str("FR".into()));
        assert!(df.filter_mask(&[true]).is_err());
    }

    #[test]
    fn drop_and_set_column() {
        let mut df = sample();
        let dropped = df.drop_column("salary").unwrap();
        assert_eq!(dropped.name(), "salary");
        assert_eq!(df.n_cols(), 2);
        assert!(df.column("salary").is_err());
        // index still consistent after removal
        assert_eq!(df.get(3, "age").unwrap(), Value::Int(28));

        df.set_column(Column::from_i64(
            "age",
            vec![Some(1), Some(2), Some(3), Some(4)],
        ))
        .unwrap();
        assert_eq!(df.get(0, "age").unwrap(), Value::Int(1));
        df.set_column(Column::from_f64("new", vec![Some(0.0); 4]))
            .unwrap();
        assert!(df.has_column("new"));
    }

    #[test]
    fn rows_and_cells() {
        let df = sample();
        let row = df.row(1).unwrap();
        assert_eq!(row[0], ("country".to_string(), Value::Str("US".into())));
        assert!(df.row(9).is_err());
        assert_eq!(df.get(3, "salary").unwrap(), Value::Null);
    }

    #[test]
    fn vstack_frames() {
        let mut a = sample();
        let b = sample();
        a.vstack(&b).unwrap();
        assert_eq!(a.n_rows(), 8);
        assert_eq!(a.get(4, "country").unwrap(), Value::Str("DE".into()));

        let mut c = sample();
        let bad = DataFrameBuilder::new()
            .cat("country", vec![Some("X")])
            .build()
            .unwrap();
        assert!(c.vstack(&bad).is_err());
    }

    #[test]
    fn sorting() {
        let df = sample();
        let sorted = df.sort_by("age").unwrap();
        assert_eq!(sorted.get(0, "age").unwrap(), Value::Int(28));
        assert_eq!(sorted.get(3, "age").unwrap(), Value::Int(40));
        // nulls first for salary
        let by_salary = df.sort_by("salary").unwrap();
        assert_eq!(by_salary.get(0, "salary").unwrap(), Value::Null);
    }

    #[test]
    fn head_and_display() {
        let df = sample();
        assert_eq!(df.head(2).n_rows(), 2);
        let text = df.to_pretty_string(2);
        assert!(text.contains("country"));
        assert!(text.contains("more rows"));
        assert!(!format!("{df}").is_empty());
    }

    #[test]
    fn empty_frame() {
        let df = DataFrame::new();
        assert_eq!(df.n_rows(), 0);
        assert!(df.is_empty());
        assert_eq!(df.head(5).n_rows(), 0);
    }
}
