//! Dynamically typed scalar values and data types.
//!
//! A [`Value`] is the unit exchanged at cell granularity: row accessors,
//! predicates, and CSV parsing all speak `Value`. Columns themselves are
//! stored in typed vectors (see [`crate::column`]), so `Value` is only
//! materialised at the boundaries.

use std::cmp::Ordering;
use std::fmt;

/// The logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floating point numbers.
    Float,
    /// Booleans.
    Bool,
    /// Dictionary-encoded strings (categorical data).
    Categorical,
}

impl DType {
    /// Human-readable name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            DType::Int => "int",
            DType::Float => "float",
            DType::Bool => "bool",
            DType::Categorical => "categorical",
        }
    }

    /// Whether the type is numeric (int or float).
    pub fn is_numeric(self) -> bool {
        matches!(self, DType::Int | DType::Float)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically typed scalar cell value.
///
/// `Null` represents a missing value regardless of the column's type.
#[derive(Debug, Clone)]
pub enum Value {
    /// Missing value.
    Null,
    /// Integer value.
    Int(i64),
    /// Floating point value.
    Float(f64),
    /// Boolean value.
    Bool(bool),
    /// String / categorical value.
    Str(String),
}

impl Value {
    /// Returns `true` if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The dynamic type of the value, or `None` for nulls.
    pub fn dtype(&self) -> Option<DType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DType::Int),
            Value::Float(_) => Some(DType::Float),
            Value::Bool(_) => Some(DType::Bool),
            Value::Str(_) => Some(DType::Categorical),
        }
    }

    /// Numeric view of the value: ints and floats convert, booleans map to
    /// 0/1, everything else (including null) is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view of the value, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Boolean view of the value, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the value the way it appears in CSV output and reports.
    /// Nulls render as the empty string.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    format!("{v}")
                }
            }
            Value::Bool(b) => b.to_string(),
            Value::Str(s) => s.clone(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            _ => f.write_str(&self.render()),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            // Cross numeric comparisons: 3 == 3.0
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            _ => false,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, Value::Null) => Some(Ordering::Equal),
            // Nulls sort first so they group together deterministically.
            (Value::Null, _) => Some(Ordering::Less),
            (_, Value::Null) => Some(Ordering::Greater),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

/// Parses a raw textual token (e.g. a CSV field) into the most specific
/// [`Value`]: empty → null, then int, float, bool, finally string.
pub fn parse_token(token: &str) -> Value {
    let trimmed = token.trim();
    if trimmed.is_empty() {
        return Value::Null;
    }
    if let Ok(v) = trimmed.parse::<i64>() {
        return Value::Int(v);
    }
    if let Ok(v) = trimmed.parse::<f64>() {
        return Value::Float(v);
    }
    match trimmed {
        "true" | "True" | "TRUE" => Value::Bool(true),
        "false" | "False" | "FALSE" => Value::Bool(false),
        _ => Value::Str(trimmed.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_names() {
        assert_eq!(DType::Int.name(), "int");
        assert_eq!(DType::Categorical.to_string(), "categorical");
        assert!(DType::Float.is_numeric());
        assert!(!DType::Bool.is_numeric());
    }

    #[test]
    fn value_null_checks() {
        assert!(Value::Null.is_null());
        assert!(!Value::Int(3).is_null());
        assert_eq!(Value::Null.dtype(), None);
        assert_eq!(Value::Float(1.0).dtype(), Some(DType::Float));
    }

    #[test]
    fn value_numeric_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
        assert_eq!(Value::Int(7).as_i64(), Some(7));
        assert_eq!(Value::Str("abc".into()).as_str(), Some("abc"));
        assert_eq!(Value::Bool(false).as_bool(), Some(false));
    }

    #[test]
    fn value_equality_cross_type() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
        assert_eq!(Value::Str("a".into()), Value::Str("a".into()));
        assert_ne!(Value::Null, Value::Int(0));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn value_ordering() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Float(1.5) < Value::Int(2));
        assert!(Value::Str("a".into()) < Value::Str("b".into()));
        assert!(Value::Null < Value::Int(-100));
        assert_eq!(Value::Str("a".into()).partial_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn parse_tokens() {
        assert_eq!(parse_token(""), Value::Null);
        assert_eq!(parse_token("  "), Value::Null);
        assert_eq!(parse_token("42"), Value::Int(42));
        assert_eq!(parse_token("3.25"), Value::Float(3.25));
        assert_eq!(parse_token("true"), Value::Bool(true));
        assert_eq!(parse_token("Germany"), Value::Str("Germany".into()));
    }

    #[test]
    fn render_values() {
        assert_eq!(Value::Null.render(), "");
        assert_eq!(Value::Int(5).render(), "5");
        assert_eq!(Value::Float(2.0).render(), "2.0");
        assert_eq!(Value::Str("x".into()).render(), "x");
        assert_eq!(Value::Bool(true).render(), "true");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(Some(1i64)), Value::Int(1));
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
    }
}
