//! Aggregation functions applied to column slices during group-by.

use crate::column::Column;
use crate::error::{Result, TabularError};

/// An aggregation function over the numeric view of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFn {
    /// Number of non-null values.
    Count,
    /// Sum of values.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Median (average of the two middle values for even counts).
    Median,
    /// Population standard deviation.
    Std,
}

impl AggFn {
    /// SQL-ish name used when naming output columns (`avg(Salary)`).
    pub fn name(self) -> &'static str {
        match self {
            AggFn::Count => "count",
            AggFn::Sum => "sum",
            AggFn::Mean => "avg",
            AggFn::Min => "min",
            AggFn::Max => "max",
            AggFn::Median => "median",
            AggFn::Std => "std",
        }
    }

    /// Applies the aggregation over the selected rows of a column. Nulls are
    /// ignored. Returns `None` when no non-null value is selected (except
    /// `Count`, which returns 0).
    pub fn apply(self, column: &Column, rows: &[usize]) -> Result<Option<f64>> {
        let numeric = column.to_f64();
        let mut values: Vec<f64> = Vec::with_capacity(rows.len());
        for &i in rows {
            if i >= numeric.len() {
                return Err(TabularError::RowOutOfBounds {
                    index: i,
                    len: numeric.len(),
                });
            }
            if let Some(v) = numeric[i] {
                values.push(v);
            } else if !column.is_null_at(i) {
                // Non-null but non-numeric (categorical): only Count is defined.
                if self != AggFn::Count {
                    return Err(TabularError::TypeMismatch {
                        column: column.name().to_string(),
                        expected: "numeric",
                        got: column.dtype().name(),
                    });
                }
                values.push(0.0);
            }
        }
        Ok(match self {
            AggFn::Count => Some(values.len() as f64),
            AggFn::Sum => {
                if values.is_empty() {
                    None
                } else {
                    Some(values.iter().sum())
                }
            }
            AggFn::Mean => {
                if values.is_empty() {
                    None
                } else {
                    Some(values.iter().sum::<f64>() / values.len() as f64)
                }
            }
            AggFn::Min => values.iter().cloned().fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            }),
            AggFn::Max => values.iter().cloned().fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            }),
            AggFn::Median => {
                if values.is_empty() {
                    None
                } else {
                    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                    let mid = values.len() / 2;
                    Some(if values.len() % 2 == 1 {
                        values[mid]
                    } else {
                        (values[mid - 1] + values[mid]) / 2.0
                    })
                }
            }
            AggFn::Std => {
                if values.is_empty() {
                    None
                } else {
                    let mean = values.iter().sum::<f64>() / values.len() as f64;
                    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
                        / values.len() as f64;
                    Some(var.sqrt())
                }
            }
        })
    }

    /// Applies the aggregation over the full column.
    pub fn apply_all(self, column: &Column) -> Result<Option<f64>> {
        let rows: Vec<usize> = (0..column.len()).collect();
        self.apply(column, &rows)
    }
}

impl std::fmt::Display for AggFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col() -> Column {
        Column::from_f64("x", vec![Some(1.0), Some(3.0), None, Some(2.0), Some(4.0)])
    }

    #[test]
    fn count_ignores_nulls() {
        assert_eq!(AggFn::Count.apply_all(&col()).unwrap(), Some(4.0));
    }

    #[test]
    fn sum_mean() {
        assert_eq!(AggFn::Sum.apply_all(&col()).unwrap(), Some(10.0));
        assert_eq!(AggFn::Mean.apply_all(&col()).unwrap(), Some(2.5));
    }

    #[test]
    fn min_max() {
        assert_eq!(AggFn::Min.apply_all(&col()).unwrap(), Some(1.0));
        assert_eq!(AggFn::Max.apply_all(&col()).unwrap(), Some(4.0));
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(AggFn::Median.apply_all(&col()).unwrap(), Some(2.5));
        let odd = Column::from_f64("x", vec![Some(5.0), Some(1.0), Some(3.0)]);
        assert_eq!(AggFn::Median.apply_all(&odd).unwrap(), Some(3.0));
    }

    #[test]
    fn std_population() {
        let c = Column::from_f64("x", vec![Some(2.0), Some(4.0)]);
        assert_eq!(AggFn::Std.apply_all(&c).unwrap(), Some(1.0));
    }

    #[test]
    fn subset_rows() {
        let c = col();
        assert_eq!(AggFn::Mean.apply(&c, &[0, 1]).unwrap(), Some(2.0));
        assert_eq!(AggFn::Sum.apply(&c, &[2]).unwrap(), None);
        assert_eq!(AggFn::Count.apply(&c, &[2]).unwrap(), Some(0.0));
        assert!(AggFn::Mean.apply(&c, &[99]).is_err());
    }

    #[test]
    fn empty_selection() {
        let c = col();
        assert_eq!(AggFn::Mean.apply(&c, &[]).unwrap(), None);
        assert_eq!(AggFn::Count.apply(&c, &[]).unwrap(), Some(0.0));
        assert_eq!(AggFn::Min.apply(&c, &[]).unwrap(), None);
    }

    #[test]
    fn categorical_only_count() {
        let c = Column::from_str_values("c", vec![Some("a"), Some("b"), None]);
        assert_eq!(AggFn::Count.apply_all(&c).unwrap(), Some(2.0));
        assert!(AggFn::Mean.apply_all(&c).is_err());
    }

    #[test]
    fn names() {
        assert_eq!(AggFn::Mean.name(), "avg");
        assert_eq!(AggFn::Mean.to_string(), "avg");
        assert_eq!(AggFn::Std.name(), "std");
    }
}
