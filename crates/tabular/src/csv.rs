//! Minimal CSV reader/writer with type inference.
//!
//! Supports the subset of CSV needed to persist and reload the synthetic
//! datasets and experiment outputs: comma separation, double-quote quoting,
//! and a header row. Embedded newlines inside quoted fields are supported.

use std::fs;
use std::path::Path;

use crate::column::Column;
use crate::dataframe::DataFrame;
use crate::error::{Result, TabularError};
use crate::value::{parse_token, Value};

/// Parses one CSV record (line-level splitting is handled by the caller via
/// [`split_records`]).
fn parse_record(record: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = record.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    current.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut current));
            }
            c => current.push(c),
        }
    }
    fields.push(current);
    fields
}

/// Splits raw CSV text into records, respecting quoted newlines.
fn split_records(text: &str) -> Vec<String> {
    let mut records = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for c in text.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                current.push(c);
            }
            '\n' if !in_quotes => {
                if !current.trim_end_matches('\r').is_empty() {
                    records.push(current.trim_end_matches('\r').to_string());
                }
                current.clear();
            }
            c => current.push(c),
        }
    }
    if !current.trim_end_matches('\r').is_empty() {
        records.push(current.trim_end_matches('\r').to_string());
    }
    records
}

/// Parses CSV text (with a header row) into a frame, inferring column types.
pub fn read_csv_str(text: &str) -> Result<DataFrame> {
    let records = split_records(text);
    if records.is_empty() {
        return Err(TabularError::Csv("empty input".into()));
    }
    let header = parse_record(&records[0]);
    let n_cols = header.len();
    let mut cells: Vec<Vec<Value>> = vec![Vec::with_capacity(records.len() - 1); n_cols];
    for (line_no, record) in records.iter().enumerate().skip(1) {
        let fields = parse_record(record);
        if fields.len() != n_cols {
            return Err(TabularError::Csv(format!(
                "record {line_no} has {} fields, expected {n_cols}",
                fields.len()
            )));
        }
        for (i, f) in fields.into_iter().enumerate() {
            cells[i].push(parse_token(&f));
        }
    }
    let columns: Vec<Column> = header
        .into_iter()
        .zip(cells)
        .map(|(name, values)| Column::from_values(name, values))
        .collect();
    DataFrame::from_columns(columns)
}

/// Reads a CSV file into a frame.
pub fn read_csv(path: impl AsRef<Path>) -> Result<DataFrame> {
    let text = fs::read_to_string(path.as_ref())
        .map_err(|e| TabularError::Csv(format!("{}: {e}", path.as_ref().display())))?;
    read_csv_str(&text)
}

fn escape_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders the frame as CSV text with a header row. Nulls become empty fields.
pub fn write_csv_str(df: &DataFrame) -> String {
    let mut out = String::new();
    out.push_str(
        &df.column_names()
            .iter()
            .map(|n| escape_field(n))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for i in 0..df.n_rows() {
        let row: Vec<String> = df
            .columns()
            .map(|c| escape_field(&c.get(i).map(|v| v.render()).unwrap_or_default()))
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Writes the frame to a CSV file.
pub fn write_csv(df: &DataFrame, path: impl AsRef<Path>) -> Result<()> {
    fs::write(path.as_ref(), write_csv_str(df))
        .map_err(|e| TabularError::Csv(format!("{}: {e}", path.as_ref().display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataframe::DataFrameBuilder;
    use crate::value::DType;

    #[test]
    fn roundtrip_simple() {
        let df = DataFrameBuilder::new()
            .cat("country", vec![Some("DE"), Some("US"), None])
            .float("gdp", vec![Some(4.0), None, Some(2.5)])
            .int("rank", vec![Some(1), Some(2), Some(3)])
            .build()
            .unwrap();
        let text = write_csv_str(&df);
        let back = read_csv_str(&text).unwrap();
        assert_eq!(back.n_rows(), 3);
        assert_eq!(back.column("country").unwrap().dtype(), DType::Categorical);
        assert_eq!(back.column("gdp").unwrap().dtype(), DType::Float);
        assert_eq!(back.column("rank").unwrap().dtype(), DType::Int);
        assert_eq!(back.get(2, "country").unwrap(), Value::Null);
        assert_eq!(back.get(1, "gdp").unwrap(), Value::Null);
    }

    #[test]
    fn quoted_fields() {
        let text = "name,desc\n\"Doe, John\",\"said \"\"hi\"\"\"\nplain,also plain\n";
        let df = read_csv_str(text).unwrap();
        assert_eq!(df.get(0, "name").unwrap(), Value::Str("Doe, John".into()));
        assert_eq!(df.get(0, "desc").unwrap(), Value::Str("said \"hi\"".into()));
        // escaping roundtrip
        let back = read_csv_str(&write_csv_str(&df)).unwrap();
        assert_eq!(back.get(0, "name").unwrap(), Value::Str("Doe, John".into()));
    }

    #[test]
    fn mismatched_record_errors() {
        let text = "a,b\n1,2\n3\n";
        assert!(matches!(read_csv_str(text), Err(TabularError::Csv(_))));
    }

    #[test]
    fn empty_input_errors() {
        assert!(read_csv_str("").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let df = DataFrameBuilder::new()
            .int("x", vec![Some(1), Some(2)])
            .build()
            .unwrap();
        let path = std::env::temp_dir().join("tabular_csv_test.csv");
        write_csv(&df, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.n_rows(), 2);
        std::fs::remove_file(&path).ok();
        assert!(read_csv("/nonexistent/nope.csv").is_err());
    }

    #[test]
    fn crlf_and_trailing_newline() {
        let text = "a,b\r\n1,x\r\n2,y\r\n";
        let df = read_csv_str(text).unwrap();
        assert_eq!(df.n_rows(), 2);
        assert_eq!(df.get(1, "b").unwrap(), Value::Str("y".into()));
    }
}
