//! Compressed, immutable ("sealed") column storage.
//!
//! The column layer has a two-state lifecycle:
//!
//! * **Mutable** — [`EncodedColumn`]: dense `Vec<u32>` codes plus a validity
//!   bitmap. Cheap to build incrementally and to index; this is the state
//!   every encoding and binning pass produces.
//! * **Sealed** — [`SealedColumn`]: the same logical content re-encoded into
//!   the smallest of several physical layouts, chosen per column by
//!   [`EncodedColumn::seal`]. A sealed column is immutable, usually several
//!   times smaller, and exposes its codes either as a decoded slice or as a
//!   [run iterator](RunIter) that downstream kernels can fold without
//!   decoding.
//!
//! The encodings (mirroring the read-optimised stores this layer is modelled
//! on — InfluxDB IOx's read buffer, snorkel's sealed shards):
//!
//! * [`Encoding::RunLength`] — `(value, cumulative end)` run pairs; wins on
//!   low-cardinality or sorted/grouped code streams where the average run is
//!   longer than two rows.
//! * [`Encoding::Bitpacked`] — fixed-width packed codes
//!   (`ceil(log2(cardinality))` bits per row); wins on shuffled
//!   low-cardinality streams where runs are short but 32 bits per code is
//!   overkill.
//! * [`Encoding::Delta`] — first value plus bit-packed non-negative deltas;
//!   wins on sorted integer keys, where deltas are tiny even though the
//!   cardinality (and therefore the bit-packed width) is huge. Only
//!   applicable to fully observed, non-decreasing code streams.
//! * [`Encoding::Dense`] — the mutable layout kept verbatim; the fallback
//!   when nothing else is smaller.
//!
//! The selection heuristic is simply "smallest encoded payload", with a
//! deterministic tie-break preferring run-iterable encodings (they are the
//! fastest to aggregate); the decision and the byte counts are recorded per
//! column in [`EncodingChoice`] so compression ratios are measurable, not
//! anecdotal.

use std::borrow::Cow;

use crate::bitmap::Bitmap;
use crate::column::EncodedColumn;

/// The physical layout of a sealed column's codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Dense `Vec<u32>`, one slot per row (the mutable layout, kept when
    /// nothing smaller applies).
    Dense,
    /// Run-length encoding: `(value, cumulative exclusive end)` pairs.
    RunLength,
    /// Fixed-width bit-packing of every code.
    Bitpacked,
    /// First value plus bit-packed deltas (sorted, fully observed streams).
    Delta,
}

impl Encoding {
    /// Stable lower-case name, used in reports and bench output.
    pub fn name(self) -> &'static str {
        match self {
            Encoding::Dense => "dense",
            Encoding::RunLength => "rle",
            Encoding::Bitpacked => "bitpacked",
            Encoding::Delta => "delta",
        }
    }
}

/// Why a sealed column looks the way it does: the chosen encoding and the
/// byte counts that drove the choice. Byte counts cover the code payload only
/// (the validity bitmap and the label dictionary are identical in both
/// states and excluded from the comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodingChoice {
    /// The encoding the heuristic selected.
    pub encoding: Encoding,
    /// Bytes of the dense (mutable) code vector: `4 · rows`.
    pub dense_bytes: usize,
    /// Bytes of the selected encoding's code payload.
    pub sealed_bytes: usize,
    /// Number of maximal equal-code runs in the stream (the RLE cost driver).
    pub n_runs: usize,
}

/// Fixed-width bit-packed unsigned integers: `len` values of `width` bits
/// each, packed contiguously into little-endian `u64` words (a value may
/// span two words).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedInts {
    words: Vec<u64>,
    width: u32,
    len: usize,
}

impl PackedInts {
    /// Packs `values` at the given width.
    ///
    /// # Panics
    /// Panics if `width` is not in `1..=32` or a value does not fit.
    pub fn pack(values: &[u32], width: u32) -> PackedInts {
        assert!((1..=32).contains(&width), "width {width} out of range");
        let w = width as usize;
        let total_bits = values.len() * w;
        let mut words = vec![0u64; total_bits.div_ceil(64)];
        let mut bit = 0usize;
        for &v in values {
            assert!(
                width == 32 || u64::from(v) < (1u64 << width),
                "value {v} does not fit in {width} bits"
            );
            let wi = bit >> 6;
            let sh = bit & 63;
            words[wi] |= (v as u64) << sh;
            if sh + w > 64 {
                words[wi + 1] |= (v as u64) >> (64 - sh);
            }
            bit += w;
        }
        PackedInts {
            words,
            width,
            len: values.len(),
        }
    }

    /// Number of packed values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no values are packed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per value.
    pub fn width(&self) -> u32 {
        self.width
    }

    #[inline]
    fn mask(&self) -> u32 {
        if self.width == 32 {
            u32::MAX
        } else {
            (1u32 << self.width) - 1
        }
    }

    /// The value at index `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        assert!(i < self.len, "index {i} out of range ({})", self.len);
        let w = self.width as usize;
        let bit = i * w;
        let wi = bit >> 6;
        let sh = bit & 63;
        let mut v = self.words[wi] >> sh;
        if sh + w > 64 {
            v |= self.words[wi + 1] << (64 - sh);
        }
        (v as u32) & self.mask()
    }

    /// Decodes `out.len()` consecutive values starting at `start` into `out`.
    /// Sequential decode walks the bit offset incrementally, which is what
    /// the counting kernel uses to unpack 64-row blocks.
    ///
    /// # Panics
    /// Panics if `start + out.len() > len`.
    pub fn unpack_range(&self, start: usize, out: &mut [u32]) {
        assert!(
            start + out.len() <= self.len,
            "range {start}..{} out of range ({})",
            start + out.len(),
            self.len
        );
        let w = self.width as usize;
        let mask = self.mask();
        let mut bit = start * w;
        for o in out.iter_mut() {
            let wi = bit >> 6;
            let sh = bit & 63;
            let mut v = self.words[wi] >> sh;
            if sh + w > 64 {
                v |= self.words[wi + 1] << (64 - sh);
            }
            *o = (v as u32) & mask;
            bit += w;
        }
    }

    /// Fused decode + mixed-radix accumulate: adds `value * mult` of the
    /// `acc.len()` packed values starting at `start` into `acc`, element by
    /// element. Equivalent to [`unpack_range`](PackedInts::unpack_range)
    /// followed by a multiply-add pass, without materialising the decoded
    /// block — the entropy kernel's joint-index assembly runs one such pass
    /// per packed column.
    pub fn accumulate_range(&self, start: usize, mult: usize, acc: &mut [usize]) {
        assert!(
            start + acc.len() <= self.len,
            "range {start}..{} out of range ({})",
            start + acc.len(),
            self.len
        );
        let w = self.width as usize;
        let mask = self.mask();
        let mut bit = start * w;
        for a in acc.iter_mut() {
            let wi = bit >> 6;
            let sh = bit & 63;
            let mut v = self.words[wi] >> sh;
            if sh + w > 64 {
                v |= self.words[wi + 1] << (64 - sh);
            }
            *a += ((v as u32) & mask) as usize * mult;
            bit += w;
        }
    }

    /// Iterates all values in order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Bytes of the backing word vector.
    pub fn payload_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// The physical code storage of a [`SealedColumn`].
#[derive(Debug, Clone, PartialEq, Eq)]
enum SealedCodes {
    /// Dense codes kept verbatim.
    Dense(Vec<u32>),
    /// Run-length pairs: `values[k]` repeats over rows
    /// `ends[k-1]..ends[k]` (with `ends[-1]` = 0).
    Rle { values: Vec<u32>, ends: Vec<u32> },
    /// Fixed-width packed codes.
    Bitpacked(PackedInts),
    /// `first` plus packed `deltas`, where `deltas[i]` (for `i >= 1`) is
    /// `code[i] - code[i-1]` and `deltas[0]` is 0.
    Delta { first: u32, deltas: PackedInts },
}

/// One maximal run of equal codes: `value` over rows `start..end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// The code repeated across the run.
    pub value: u32,
    /// First row of the run.
    pub start: usize,
    /// One past the last row of the run.
    pub end: usize,
}

enum RunIterInner<'a> {
    Slice {
        codes: &'a [u32],
        pos: usize,
    },
    Rle {
        values: &'a [u32],
        ends: &'a [u32],
        idx: usize,
    },
    Packed {
        packed: &'a PackedInts,
        pos: usize,
    },
    Delta {
        deltas: &'a PackedInts,
        value: u32,
        pos: usize,
    },
}

/// Iterator over the maximal equal-code runs of a column, in row order. The
/// runs partition `0..len` (null slots carry code 0 and merge into their
/// neighbouring runs).
pub struct RunIter<'a> {
    inner: RunIterInner<'a>,
}

impl Iterator for RunIter<'_> {
    type Item = Run;

    fn next(&mut self) -> Option<Run> {
        match &mut self.inner {
            RunIterInner::Slice { codes, pos } => {
                if *pos >= codes.len() {
                    return None;
                }
                let start = *pos;
                let value = codes[start];
                let mut p = start + 1;
                while p < codes.len() && codes[p] == value {
                    p += 1;
                }
                *pos = p;
                Some(Run {
                    value,
                    start,
                    end: p,
                })
            }
            RunIterInner::Rle { values, ends, idx } => {
                if *idx >= values.len() {
                    return None;
                }
                let start = if *idx == 0 {
                    0
                } else {
                    ends[*idx - 1] as usize
                };
                let run = Run {
                    value: values[*idx],
                    start,
                    end: ends[*idx] as usize,
                };
                *idx += 1;
                Some(run)
            }
            RunIterInner::Packed { packed, pos } => {
                if *pos >= packed.len() {
                    return None;
                }
                let start = *pos;
                let value = packed.get(start);
                let mut p = start + 1;
                while p < packed.len() && packed.get(p) == value {
                    p += 1;
                }
                *pos = p;
                Some(Run {
                    value,
                    start,
                    end: p,
                })
            }
            RunIterInner::Delta { deltas, value, pos } => {
                if *pos >= deltas.len() {
                    return None;
                }
                let start = *pos;
                let v = *value;
                let mut p = start + 1;
                while p < deltas.len() {
                    let d = deltas.get(p);
                    if d != 0 {
                        *value = v.wrapping_add(d);
                        break;
                    }
                    p += 1;
                }
                *pos = p;
                Some(Run {
                    value: v,
                    start,
                    end: p,
                })
            }
        }
    }
}

/// What a sealed column exposes to a consumer: either the codes as a decoded
/// slice (zero-copy, when the column sealed to the dense layout) or a run
/// iterator over the compressed stream.
pub enum SealedView<'a> {
    /// Direct access to per-row codes.
    Slice(&'a [u32]),
    /// Run-at-a-time access to the compressed stream.
    Runs(RunIter<'a>),
}

/// How the counting kernel reads a column: the access path that is free for
/// the column's physical layout.
pub enum Access<'a> {
    /// Per-row codes are available as a slice (mutable columns and sealed
    /// dense columns).
    Codes(&'a [u32]),
    /// Per-row codes are available by fixed-width unpacking (sealed
    /// bit-packed columns).
    Packed(&'a PackedInts),
    /// The column is cheapest to read run-at-a-time (sealed RLE and delta
    /// columns).
    Runs(RunIter<'a>),
}

/// An immutable, compressed encoded column: the sealed state of the
/// mutable → sealed lifecycle. Produced by [`EncodedColumn::seal`]; logically
/// identical to the column it was sealed from ([`SealedColumn::decode`]
/// round-trips exactly), physically stored in the per-column
/// [`Encoding`] the selection heuristic picked.
#[derive(Debug, Clone, PartialEq)]
pub struct SealedColumn {
    codes: SealedCodes,
    validity: Bitmap,
    labels: Vec<String>,
    choice: EncodingChoice,
}

/// Bits needed to represent `v` (at least 1).
fn bits_for(v: u32) -> u32 {
    (32 - v.leading_zeros()).max(1)
}

impl EncodedColumn {
    /// Seals the column: re-encodes the codes into the smallest applicable
    /// physical layout and freezes the result. See the [module
    /// docs](crate::storage) for the encodings and the selection heuristic.
    ///
    /// The validity bitmap and the label dictionary are carried over
    /// unchanged; [`SealedColumn::decode`] reproduces a column equal to
    /// `self`.
    pub fn seal(&self) -> SealedColumn {
        let codes = self.codes();
        let n = codes.len();
        let card = self.cardinality() as u32;

        // One pass over the stream for the run count (the RLE cost driver).
        let mut n_runs = 0usize;
        let mut prev: Option<u32> = None;
        for &c in codes {
            if prev != Some(c) {
                n_runs += 1;
                prev = Some(c);
            }
        }

        let dense_bytes = 4 * n;
        let rle_bytes = 8 * n_runs;
        let packed_width = bits_for(card.saturating_sub(1));
        let packed_bytes = (n * packed_width as usize).div_ceil(64) * 8;
        // Delta requires a fully observed (word-level `all_set` check),
        // non-decreasing stream; the payload is the packed deltas plus the
        // first value.
        let delta = if n > 0 && self.validity().all_set() && codes.windows(2).all(|w| w[0] <= w[1])
        {
            let max_delta = codes.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
            let width = bits_for(max_delta);
            Some((width, 4 + (n * width as usize).div_ceil(64) * 8))
        } else {
            None
        };

        // Smallest payload wins; ties prefer run-iterable encodings (RLE,
        // then delta), then bit-packing, with dense as the fallback — the
        // kernel folds runs fastest, so at equal size the runnier layout is
        // the better pick. The candidate order below is the documented
        // tie-break: the first candidate achieving the minimum is chosen.
        let candidates = [
            (Encoding::RunLength, rle_bytes),
            (Encoding::Delta, delta.map_or(usize::MAX, |(_, b)| b)),
            (Encoding::Bitpacked, packed_bytes),
            (Encoding::Dense, dense_bytes),
        ];
        let min_bytes = candidates.iter().map(|&(_, b)| b).min().expect("non-empty");
        let best = *candidates
            .iter()
            .find(|&&(_, b)| b == min_bytes)
            .expect("minimum exists");

        let sealed_codes = match best.0 {
            Encoding::Dense => SealedCodes::Dense(codes.to_vec()),
            Encoding::RunLength => {
                assert!(n <= u32::MAX as usize, "RLE run ends must fit in u32");
                let mut values = Vec::with_capacity(n_runs);
                let mut ends = Vec::with_capacity(n_runs);
                let mut prev: Option<u32> = None;
                for (i, &c) in codes.iter().enumerate() {
                    if prev != Some(c) {
                        if prev.is_some() {
                            ends.push(i as u32);
                        }
                        values.push(c);
                        prev = Some(c);
                    }
                }
                if prev.is_some() {
                    ends.push(n as u32);
                }
                SealedCodes::Rle { values, ends }
            }
            Encoding::Bitpacked => SealedCodes::Bitpacked(PackedInts::pack(codes, packed_width)),
            Encoding::Delta => {
                let (width, _) = delta.expect("delta only selectable when applicable");
                let deltas: Vec<u32> = std::iter::once(0)
                    .chain(codes.windows(2).map(|w| w[1] - w[0]))
                    .collect();
                SealedCodes::Delta {
                    first: codes[0],
                    deltas: PackedInts::pack(&deltas, width),
                }
            }
        };

        SealedColumn {
            codes: sealed_codes,
            validity: self.validity().clone(),
            labels: self.labels().to_vec(),
            choice: EncodingChoice {
                encoding: best.0,
                dense_bytes,
                sealed_bytes: best.1,
                n_runs,
            },
        }
    }
}

impl SealedColumn {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.codes {
            SealedCodes::Dense(v) => v.len(),
            SealedCodes::Rle { ends, .. } => ends.last().map_or(0, |&e| e as usize),
            SealedCodes::Bitpacked(p) => p.len(),
            SealedCodes::Delta { deltas, .. } => deltas.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct codes (equal to the number of labels).
    pub fn cardinality(&self) -> usize {
        self.labels.len()
    }

    /// Human-readable label for each code, indexed by code.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The label of one code.
    ///
    /// # Panics
    /// Panics if `code >= cardinality`.
    pub fn label(&self, code: u32) -> &str {
        &self.labels[code as usize]
    }

    /// The validity bitmap: bit `i` set ⇔ row `i` is non-null.
    pub fn validity(&self) -> &Bitmap {
        &self.validity
    }

    /// Whether row `i` is non-null.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn is_present(&self, i: usize) -> bool {
        self.validity.get(i)
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        self.validity.count_unset()
    }

    /// Number of non-null rows.
    pub fn n_present(&self) -> usize {
        self.validity.count_set()
    }

    /// The physical encoding the sealer selected.
    pub fn encoding(&self) -> Encoding {
        self.choice.encoding
    }

    /// The recorded selection decision and byte accounting.
    pub fn choice(&self) -> &EncodingChoice {
        &self.choice
    }

    /// Bytes of the code payload in the sealed layout.
    pub fn code_bytes(&self) -> usize {
        self.choice.sealed_bytes
    }

    /// The code of row `i`, or `None` when the row is null.
    ///
    /// Random access costs depend on the layout: O(1) for dense and
    /// bit-packed, O(log runs) for RLE, O(i) for delta (sequential prefix
    /// sum) — consumers that walk many rows should use
    /// [`view`](SealedColumn::view) or [`runs`](SealedColumn::runs) instead.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn code_at(&self, i: usize) -> Option<u32> {
        if !self.validity.get(i) {
            return None;
        }
        Some(self.raw_code_at(i))
    }

    /// The stored code of row `i`, ignoring validity (null slots hold 0).
    fn raw_code_at(&self, i: usize) -> u32 {
        match &self.codes {
            SealedCodes::Dense(v) => v[i],
            SealedCodes::Rle { values, ends } => {
                let k = ends.partition_point(|&e| e as usize <= i);
                values[k]
            }
            SealedCodes::Bitpacked(p) => p.get(i),
            SealedCodes::Delta { first, deltas } => {
                let mut v = *first;
                for j in 1..=i {
                    v = v.wrapping_add(deltas.get(j));
                }
                v
            }
        }
    }

    /// The sealed view: a decoded slice for dense columns, a run iterator
    /// for every compressed layout.
    pub fn view(&self) -> SealedView<'_> {
        match &self.codes {
            SealedCodes::Dense(v) => SealedView::Slice(v),
            _ => SealedView::Runs(self.runs()),
        }
    }

    /// Iterates the maximal equal-code runs of the column, in row order.
    /// Available for every layout (dense and bit-packed columns group equal
    /// adjacent codes on the fly; RLE and delta read their stored runs).
    pub fn runs(&self) -> RunIter<'_> {
        let inner = match &self.codes {
            SealedCodes::Dense(v) => RunIterInner::Slice { codes: v, pos: 0 },
            SealedCodes::Rle { values, ends } => RunIterInner::Rle {
                values,
                ends,
                idx: 0,
            },
            SealedCodes::Bitpacked(p) => RunIterInner::Packed { packed: p, pos: 0 },
            SealedCodes::Delta { first, deltas } => RunIterInner::Delta {
                deltas,
                value: *first,
                pos: 0,
            },
        };
        RunIter { inner }
    }

    /// How the counting kernel should read this column (see [`Access`]).
    pub fn access(&self) -> Access<'_> {
        match &self.codes {
            SealedCodes::Dense(v) => Access::Codes(v),
            SealedCodes::Bitpacked(p) => Access::Packed(p),
            SealedCodes::Rle { .. } | SealedCodes::Delta { .. } => Access::Runs(self.runs()),
        }
    }

    /// Decodes the full per-row code vector (null slots hold 0, as in the
    /// mutable layout).
    pub fn decode_codes(&self) -> Vec<u32> {
        match &self.codes {
            SealedCodes::Dense(v) => v.clone(),
            SealedCodes::Rle { values, ends } => {
                let mut out = Vec::with_capacity(self.len());
                let mut start = 0usize;
                for (&v, &e) in values.iter().zip(ends) {
                    out.resize(e as usize, v);
                    start = e as usize;
                }
                debug_assert_eq!(start, out.len());
                out
            }
            SealedCodes::Bitpacked(p) => {
                let mut out = vec![0u32; p.len()];
                p.unpack_range(0, &mut out);
                out
            }
            SealedCodes::Delta { first, deltas } => {
                let mut out = Vec::with_capacity(deltas.len());
                let mut v = *first;
                for i in 0..deltas.len() {
                    if i > 0 {
                        v = v.wrapping_add(deltas.get(i));
                    }
                    out.push(v);
                }
                out
            }
        }
    }

    /// Unseals the column back to the mutable state. The result is equal
    /// (by `==`) to the column [`seal`](EncodedColumn::seal) was called on.
    pub fn decode(&self) -> EncodedColumn {
        EncodedColumn::from_parts(
            self.decode_codes(),
            self.validity.clone(),
            self.labels.clone(),
        )
    }
}

/// A borrowed view over a column in either lifecycle state — the unified
/// currency consumers (the counting kernel, the frame-level measures, the
/// IPW machinery) accept so they work identically on mutable and sealed
/// columns.
#[derive(Clone, Copy)]
pub enum ColumnView<'a> {
    /// A mutable (dense) column.
    Plain(&'a EncodedColumn),
    /// A sealed (compressed) column.
    Sealed(&'a SealedColumn),
}

impl<'a> From<&'a EncodedColumn> for ColumnView<'a> {
    fn from(c: &'a EncodedColumn) -> Self {
        ColumnView::Plain(c)
    }
}

impl<'a> From<&'a SealedColumn> for ColumnView<'a> {
    fn from(c: &'a SealedColumn) -> Self {
        ColumnView::Sealed(c)
    }
}

impl<'a> ColumnView<'a> {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnView::Plain(c) => c.len(),
            ColumnView::Sealed(c) => c.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct codes (equal to the number of labels).
    pub fn cardinality(&self) -> usize {
        match self {
            ColumnView::Plain(c) => c.cardinality(),
            ColumnView::Sealed(c) => c.cardinality(),
        }
    }

    /// Human-readable label for each code, indexed by code.
    pub fn labels(&self) -> &'a [String] {
        match self {
            ColumnView::Plain(c) => c.labels(),
            ColumnView::Sealed(c) => c.labels(),
        }
    }

    /// The label of one code.
    ///
    /// # Panics
    /// Panics if `code >= cardinality`.
    pub fn label(&self, code: u32) -> &'a str {
        &self.labels()[code as usize]
    }

    /// The validity bitmap: bit `i` set ⇔ row `i` is non-null.
    pub fn validity(&self) -> &'a Bitmap {
        match self {
            ColumnView::Plain(c) => c.validity(),
            ColumnView::Sealed(c) => c.validity(),
        }
    }

    /// Whether row `i` is non-null.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn is_present(&self, i: usize) -> bool {
        self.validity().get(i)
    }

    /// The code of row `i`, or `None` when the row is null. See
    /// [`SealedColumn::code_at`] for per-layout costs.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn code_at(&self, i: usize) -> Option<u32> {
        match self {
            ColumnView::Plain(c) => c.code_at(i),
            ColumnView::Sealed(c) => c.code_at(i),
        }
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        self.validity().count_unset()
    }

    /// Number of non-null rows.
    pub fn n_present(&self) -> usize {
        self.validity().count_set()
    }

    /// Whether the underlying column is sealed.
    pub fn is_sealed(&self) -> bool {
        matches!(self, ColumnView::Sealed(_))
    }

    /// The physical encoding (mutable columns report [`Encoding::Dense`]).
    pub fn encoding(&self) -> Encoding {
        match self {
            ColumnView::Plain(_) => Encoding::Dense,
            ColumnView::Sealed(c) => c.encoding(),
        }
    }

    /// The per-row codes: zero-copy for mutable and sealed-dense columns, a
    /// one-shot decode for compressed layouts. Null slots hold 0.
    pub fn codes(&self) -> Cow<'a, [u32]> {
        match self {
            ColumnView::Plain(c) => Cow::Borrowed(c.codes()),
            ColumnView::Sealed(c) => match &c.codes {
                SealedCodes::Dense(v) => Cow::Borrowed(v.as_slice()),
                _ => Cow::Owned(c.decode_codes()),
            },
        }
    }

    /// Iterates the maximal equal-code runs of the column, in row order
    /// (mutable columns group equal adjacent codes on the fly).
    pub fn runs(&self) -> RunIter<'a> {
        match self {
            ColumnView::Plain(c) => RunIter {
                inner: RunIterInner::Slice {
                    codes: c.codes(),
                    pos: 0,
                },
            },
            ColumnView::Sealed(c) => c.runs(),
        }
    }

    /// How the counting kernel should read this column (see [`Access`]).
    pub fn access(&self) -> Access<'a> {
        match self {
            ColumnView::Plain(c) => Access::Codes(c.codes()),
            ColumnView::Sealed(c) => c.access(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn enc(vals: &[Option<&str>]) -> EncodedColumn {
        Column::from_str_values("c", vals.to_vec()).encode()
    }

    #[test]
    fn packed_ints_round_trip_all_widths() {
        for width in 1..=32u32 {
            let max = if width == 32 {
                u32::MAX
            } else {
                (1u32 << width) - 1
            };
            let values: Vec<u32> = (0..150u32)
                .map(|i| i.wrapping_mul(2654435761).wrapping_add(i) & max)
                .collect();
            let p = PackedInts::pack(&values, width);
            assert_eq!(p.len(), values.len());
            assert_eq!(p.width(), width);
            let back: Vec<u32> = p.iter().collect();
            assert_eq!(back, values, "width {width}");
            let mut out = vec![0u32; 40];
            p.unpack_range(37, &mut out);
            assert_eq!(out, values[37..77], "unpack_range width {width}");
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn packed_ints_reject_oversize_value() {
        PackedInts::pack(&[4], 2);
    }

    #[test]
    fn seal_constant_column_is_rle() {
        let c = enc(&[Some("x"); 500]);
        let s = c.seal();
        assert_eq!(s.encoding(), Encoding::RunLength);
        assert_eq!(s.choice().n_runs, 1);
        assert_eq!(s.choice().dense_bytes, 2000);
        assert_eq!(s.choice().sealed_bytes, 8);
        assert_eq!(s.decode(), c);
        let runs: Vec<Run> = s.runs().collect();
        assert_eq!(
            runs,
            vec![Run {
                value: 0,
                start: 0,
                end: 500
            }]
        );
    }

    #[test]
    fn seal_shuffled_low_cardinality_is_bitpacked() {
        let vals: Vec<Option<String>> = (0..1000)
            .map(|i| Some(format!("v{}", (i * 7) % 6)))
            .collect();
        let c = Column::from_str_values("c", vals.iter().map(|v| v.as_deref()).collect()).encode();
        let s = c.seal();
        assert_eq!(s.encoding(), Encoding::Bitpacked);
        // 6 distinct values -> 3 bits per code
        assert_eq!(s.choice().sealed_bytes, (1000 * 3usize).div_ceil(64) * 8);
        assert!(s.choice().sealed_bytes * 2 < s.choice().dense_bytes);
        assert_eq!(s.decode(), c);
    }

    #[test]
    fn seal_sorted_keys_is_delta() {
        // A sorted high-cardinality integer key: every code distinct, so
        // bitpacking needs 10 bits but deltas need 1.
        let codes: Vec<u32> = (0..1000).collect();
        let labels: Vec<String> = codes.iter().map(|c| c.to_string()).collect();
        let c = EncodedColumn::from_codes(codes, labels);
        let s = c.seal();
        assert_eq!(s.encoding(), Encoding::Delta);
        assert_eq!(s.decode(), c);
        assert_eq!(s.runs().count(), 1000);
        assert_eq!(s.code_at(423), Some(423));
    }

    #[test]
    fn seal_tiny_column_stays_dense() {
        // A single-row column: 4 dense bytes beat every alternative (RLE and
        // bitpacking both pay a full 8-byte word, delta pays 12), so the
        // dense fallback is the minimum.
        let c = enc(&[Some("only")]);
        let s = c.seal();
        assert_eq!(s.encoding(), Encoding::Dense);
        assert_eq!(s.choice().dense_bytes, 4);
        assert_eq!(s.choice().sealed_bytes, 4);
        assert_eq!(s.decode(), c);
        assert!(matches!(s.view(), SealedView::Slice(_)));
    }

    #[test]
    fn tie_break_prefers_run_iterable() {
        // Two rows, one value: RLE (one 8-byte run) ties dense (8 bytes);
        // the documented tie-break picks the run-iterable layout.
        let c = enc(&[Some("x"), Some("x")]);
        let s = c.seal();
        assert_eq!(s.choice().dense_bytes, 8);
        assert_eq!(s.choice().sealed_bytes, 8);
        assert_eq!(s.encoding(), Encoding::RunLength);
        assert_eq!(s.decode(), c);
    }

    #[test]
    fn seal_round_trips_with_nulls() {
        let c = enc(&[
            Some("a"),
            None,
            Some("a"),
            Some("b"),
            None,
            None,
            Some("b"),
            Some("b"),
        ]);
        let s = c.seal();
        assert_eq!(s.decode(), c);
        assert_eq!(s.null_count(), 3);
        assert_eq!(s.n_present(), 5);
        assert_eq!(s.code_at(1), None);
        assert_eq!(s.code_at(3), Some(1));
    }

    #[test]
    fn empty_column_seals() {
        let c = enc(&[]);
        let s = c.seal();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.decode(), c);
        assert_eq!(s.runs().count(), 0);
    }

    #[test]
    fn rle_random_access_binary_search() {
        // Three runs of 100 rows each: 24 RLE bytes vs 1200 dense, so RLE
        // wins and `code_at` goes through the binary search.
        let vals: Vec<Option<&str>> = (0..300).map(|i| Some(["a", "b", "c"][i / 100])).collect();
        let c = enc(&vals);
        let s = c.seal();
        assert_eq!(s.encoding(), Encoding::RunLength);
        for i in (0..c.len()).step_by(7) {
            assert_eq!(s.code_at(i), c.code_at(i), "row {i}");
        }
        assert_eq!(s.code_at(99), Some(0));
        assert_eq!(s.code_at(100), Some(1));
        assert_eq!(s.code_at(299), Some(2));
    }

    #[test]
    fn view_exposes_slice_or_runs() {
        let dense = enc(&[Some("only")]).seal();
        assert!(matches!(dense.view(), SealedView::Slice(_)));
        let rle = enc(&[Some("a"); 100]).seal();
        match rle.view() {
            SealedView::Runs(mut runs) => {
                assert_eq!(
                    runs.next(),
                    Some(Run {
                        value: 0,
                        start: 0,
                        end: 100
                    })
                );
                assert_eq!(runs.next(), None);
            }
            SealedView::Slice(_) => panic!("RLE column must expose runs"),
        }
    }

    #[test]
    fn column_view_uniform_over_states() {
        let c = enc(&[Some("a"), Some("a"), None, Some("b"), Some("b"), Some("b")]);
        let s = c.seal();
        let pv = ColumnView::from(&c);
        let sv = ColumnView::from(&s);
        assert_eq!(pv.len(), sv.len());
        assert_eq!(pv.cardinality(), sv.cardinality());
        assert_eq!(pv.labels(), sv.labels());
        assert_eq!(pv.null_count(), sv.null_count());
        assert_eq!(pv.codes(), sv.codes());
        assert!(!pv.is_sealed() && sv.is_sealed());
        for i in 0..c.len() {
            assert_eq!(pv.code_at(i), sv.code_at(i));
        }
        let pr: Vec<Run> = pv.runs().collect();
        let sr: Vec<Run> = sv.runs().collect();
        assert_eq!(pr, sr);
        // runs partition 0..len
        assert_eq!(pr.first().map(|r| r.start), Some(0));
        assert_eq!(pr.last().map(|r| r.end), Some(c.len()));
        for w in pr.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn encoding_names_are_stable() {
        assert_eq!(Encoding::Dense.name(), "dense");
        assert_eq!(Encoding::RunLength.name(), "rle");
        assert_eq!(Encoding::Bitpacked.name(), "bitpacked");
        assert_eq!(Encoding::Delta.name(), "delta");
    }
}
