//! Error type shared by all `tabular` operations.

use std::fmt;

/// Errors produced by table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TabularError {
    /// A referenced column does not exist in the frame.
    ColumnNotFound(String),
    /// A column with this name already exists.
    DuplicateColumn(String),
    /// Columns in one frame (or appended data) have mismatched lengths.
    LengthMismatch {
        /// Length the operation expected.
        expected: usize,
        /// Length actually found.
        got: usize,
    },
    /// The operation needs a different column type than the one found.
    TypeMismatch {
        /// The offending column.
        column: String,
        /// Type the operation expected.
        expected: &'static str,
        /// Type actually found.
        got: &'static str,
    },
    /// A value could not be converted to the requested type.
    InvalidValue(String),
    /// A row index is out of bounds.
    RowOutOfBounds {
        /// The requested row index.
        index: usize,
        /// The number of rows in the column or frame.
        len: usize,
    },
    /// The operation is not defined for an empty input.
    Empty(String),
    /// CSV parsing / formatting failure.
    Csv(String),
    /// Catch-all for invalid arguments (bad bin count, bad aggregation, ...).
    InvalidArgument(String),
}

impl fmt::Display for TabularError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TabularError::ColumnNotFound(name) => write!(f, "column not found: {name}"),
            TabularError::DuplicateColumn(name) => write!(f, "duplicate column: {name}"),
            TabularError::LengthMismatch { expected, got } => {
                write!(f, "length mismatch: expected {expected}, got {got}")
            }
            TabularError::TypeMismatch {
                column,
                expected,
                got,
            } => {
                write!(
                    f,
                    "type mismatch on column {column}: expected {expected}, got {got}"
                )
            }
            TabularError::InvalidValue(msg) => write!(f, "invalid value: {msg}"),
            TabularError::RowOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds for length {len}")
            }
            TabularError::Empty(msg) => write!(f, "empty input: {msg}"),
            TabularError::Csv(msg) => write!(f, "csv error: {msg}"),
            TabularError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TabularError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TabularError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_column_not_found() {
        let e = TabularError::ColumnNotFound("salary".into());
        assert_eq!(e.to_string(), "column not found: salary");
    }

    #[test]
    fn display_type_mismatch() {
        let e = TabularError::TypeMismatch {
            column: "gdp".into(),
            expected: "float",
            got: "categorical",
        };
        assert!(e.to_string().contains("gdp"));
        assert!(e.to_string().contains("float"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&TabularError::Empty("x".into()));
    }
}
