//! Row predicates — the `WHERE` clause of the paper's aggregate queries.
//!
//! A [`Predicate`] evaluates to a boolean mask over a [`DataFrame`]. The
//! paper's *context* `C` is a conjunction of attribute/value conditions;
//! refinements of `C` (Section 4.3) are built by appending further
//! [`Predicate::Eq`] terms.

use crate::dataframe::DataFrame;
use crate::error::Result;
use crate::value::Value;

/// A predicate over rows of a frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true — the empty context.
    True,
    /// `column = value` (null never matches).
    Eq(String, Value),
    /// `column != value` (null never matches).
    Ne(String, Value),
    /// `column < value` on the numeric view.
    Lt(String, Value),
    /// `column <= value` on the numeric view.
    Le(String, Value),
    /// `column > value` on the numeric view.
    Gt(String, Value),
    /// `column >= value` on the numeric view.
    Ge(String, Value),
    /// `column IN (values)`.
    In(String, Vec<Value>),
    /// `column IS NULL`.
    IsNull(String),
    /// `column IS NOT NULL`.
    NotNull(String),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column = value` convenience constructor.
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Eq(column.into(), value.into())
    }

    /// Conjunction convenience constructor.
    pub fn and(self, other: Predicate) -> Self {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (a, b) => Predicate::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction convenience constructor.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation convenience constructor.
    pub fn negate(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Builds the conjunction of a list of `(column, value)` equality terms —
    /// the shape of every context refinement in Algorithm 2.
    pub fn conjunction(terms: &[(String, Value)]) -> Self {
        terms.iter().fold(Predicate::True, |acc, (c, v)| {
            acc.and(Predicate::Eq(c.clone(), v.clone()))
        })
    }

    /// Whether the predicate is the trivial `True` context.
    pub fn is_trivial(&self) -> bool {
        matches!(self, Predicate::True)
    }

    /// The set of column names mentioned by the predicate.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::True => {}
            Predicate::Eq(c, _)
            | Predicate::Ne(c, _)
            | Predicate::Lt(c, _)
            | Predicate::Le(c, _)
            | Predicate::Gt(c, _)
            | Predicate::Ge(c, _)
            | Predicate::In(c, _)
            | Predicate::IsNull(c)
            | Predicate::NotNull(c) => out.push(c),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Predicate::Not(p) => p.collect_columns(out),
        }
    }

    /// Evaluates the predicate to a boolean mask over the frame.
    pub fn eval(&self, df: &DataFrame) -> Result<Vec<bool>> {
        let n = df.n_rows();
        match self {
            Predicate::True => Ok(vec![true; n]),
            Predicate::Eq(c, v) => {
                let col = df.column(c)?;
                Ok((0..n)
                    .map(|i| col.get(i).map(|x| !x.is_null() && x == *v).unwrap_or(false))
                    .collect())
            }
            Predicate::Ne(c, v) => {
                let col = df.column(c)?;
                Ok((0..n)
                    .map(|i| col.get(i).map(|x| !x.is_null() && x != *v).unwrap_or(false))
                    .collect())
            }
            Predicate::Lt(c, v)
            | Predicate::Le(c, v)
            | Predicate::Gt(c, v)
            | Predicate::Ge(c, v) => {
                let col = df.column(c)?;
                let target = v.as_f64();
                Ok((0..n)
                    .map(|i| {
                        let x = col.get(i).ok().and_then(|x| x.as_f64());
                        match (x, target) {
                            (Some(x), Some(t)) => match self {
                                Predicate::Lt(..) => x < t,
                                Predicate::Le(..) => x <= t,
                                Predicate::Gt(..) => x > t,
                                Predicate::Ge(..) => x >= t,
                                _ => unreachable!(),
                            },
                            _ => false,
                        }
                    })
                    .collect())
            }
            Predicate::In(c, values) => {
                let col = df.column(c)?;
                Ok((0..n)
                    .map(|i| {
                        col.get(i)
                            .map(|x| !x.is_null() && values.contains(&x))
                            .unwrap_or(false)
                    })
                    .collect())
            }
            Predicate::IsNull(c) => {
                let col = df.column(c)?;
                Ok((0..n).map(|i| col.is_null_at(i)).collect())
            }
            Predicate::NotNull(c) => {
                let col = df.column(c)?;
                Ok((0..n).map(|i| !col.is_null_at(i)).collect())
            }
            Predicate::And(a, b) => {
                let ma = a.eval(df)?;
                let mb = b.eval(df)?;
                Ok(ma.iter().zip(mb).map(|(&x, y)| x && y).collect())
            }
            Predicate::Or(a, b) => {
                let ma = a.eval(df)?;
                let mb = b.eval(df)?;
                Ok(ma.iter().zip(mb).map(|(&x, y)| x || y).collect())
            }
            Predicate::Not(p) => Ok(p.eval(df)?.into_iter().map(|x| !x).collect()),
        }
    }

    /// Returns the rows of the frame satisfying the predicate.
    pub fn apply(&self, df: &DataFrame) -> Result<DataFrame> {
        if self.is_trivial() {
            return Ok(df.clone());
        }
        df.filter_mask(&self.eval(df)?)
    }

    /// Compact SQL-ish rendering of the predicate, used in reports.
    pub fn describe(&self) -> String {
        match self {
            Predicate::True => "TRUE".to_string(),
            Predicate::Eq(c, v) => format!("{c} = {v}"),
            Predicate::Ne(c, v) => format!("{c} != {v}"),
            Predicate::Lt(c, v) => format!("{c} < {v}"),
            Predicate::Le(c, v) => format!("{c} <= {v}"),
            Predicate::Gt(c, v) => format!("{c} > {v}"),
            Predicate::Ge(c, v) => format!("{c} >= {v}"),
            Predicate::In(c, vs) => format!(
                "{c} IN ({})",
                vs.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Predicate::IsNull(c) => format!("{c} IS NULL"),
            Predicate::NotNull(c) => format!("{c} IS NOT NULL"),
            Predicate::And(a, b) => format!("{} AND {}", a.describe(), b.describe()),
            Predicate::Or(a, b) => format!("({} OR {})", a.describe(), b.describe()),
            Predicate::Not(p) => format!("NOT ({})", p.describe()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataframe::DataFrameBuilder;

    fn df() -> DataFrame {
        DataFrameBuilder::new()
            .cat(
                "continent",
                vec![Some("Europe"), Some("Asia"), Some("Europe"), None],
            )
            .float("salary", vec![Some(60.0), Some(30.0), None, Some(80.0)])
            .int("age", vec![Some(30), Some(40), Some(25), Some(50)])
            .build()
            .unwrap()
    }

    #[test]
    fn eq_and_ne() {
        let d = df();
        let m = Predicate::eq("continent", "Europe").eval(&d).unwrap();
        assert_eq!(m, vec![true, false, true, false]);
        let m = Predicate::Ne("continent".into(), "Europe".into())
            .eval(&d)
            .unwrap();
        assert_eq!(m, vec![false, true, false, false]); // null never matches
    }

    #[test]
    fn numeric_comparisons() {
        let d = df();
        assert_eq!(
            Predicate::Gt("salary".into(), Value::Float(50.0))
                .eval(&d)
                .unwrap(),
            vec![true, false, false, true]
        );
        assert_eq!(
            Predicate::Le("age".into(), Value::Int(30))
                .eval(&d)
                .unwrap(),
            vec![true, false, true, false]
        );
        assert_eq!(
            Predicate::Lt("salary".into(), Value::Float(40.0))
                .eval(&d)
                .unwrap(),
            vec![false, true, false, false]
        );
        assert_eq!(
            Predicate::Ge("age".into(), Value::Int(40))
                .eval(&d)
                .unwrap(),
            vec![false, true, false, true]
        );
    }

    #[test]
    fn in_and_null_tests() {
        let d = df();
        assert_eq!(
            Predicate::In("continent".into(), vec!["Asia".into(), "Europe".into()])
                .eval(&d)
                .unwrap(),
            vec![true, true, true, false]
        );
        assert_eq!(
            Predicate::IsNull("salary".into()).eval(&d).unwrap(),
            vec![false, false, true, false]
        );
        assert_eq!(
            Predicate::NotNull("continent".into()).eval(&d).unwrap(),
            vec![true, true, true, false]
        );
    }

    #[test]
    fn boolean_combinators() {
        let d = df();
        let p =
            Predicate::eq("continent", "Europe").and(Predicate::Gt("age".into(), Value::Int(26)));
        assert_eq!(p.eval(&d).unwrap(), vec![true, false, false, false]);
        let p = Predicate::eq("continent", "Asia").or(Predicate::eq("continent", "Europe"));
        assert_eq!(p.eval(&d).unwrap(), vec![true, true, true, false]);
        let p = Predicate::eq("continent", "Europe").negate();
        assert_eq!(p.eval(&d).unwrap(), vec![false, true, false, true]);
    }

    #[test]
    fn trivial_context_identity() {
        let d = df();
        assert_eq!(Predicate::True.eval(&d).unwrap(), vec![true; 4]);
        assert!(Predicate::True.is_trivial());
        assert_eq!(
            Predicate::True.and(Predicate::eq("age", 30)),
            Predicate::eq("age", 30)
        );
        let applied = Predicate::True.apply(&d).unwrap();
        assert_eq!(applied.n_rows(), 4);
    }

    #[test]
    fn conjunction_builder_and_columns() {
        let p = Predicate::conjunction(&[
            ("continent".to_string(), "Europe".into()),
            ("age".to_string(), Value::Int(30)),
        ]);
        assert_eq!(p.columns(), vec!["age", "continent"]);
        assert_eq!(p.describe(), "continent = Europe AND age = 30");
        let empty = Predicate::conjunction(&[]);
        assert!(empty.is_trivial());
    }

    #[test]
    fn apply_filters_rows() {
        let d = df();
        let filtered = Predicate::eq("continent", "Europe").apply(&d).unwrap();
        assert_eq!(filtered.n_rows(), 2);
    }

    #[test]
    fn missing_column_errors() {
        let d = df();
        assert!(Predicate::eq("nope", 1).eval(&d).is_err());
    }

    #[test]
    fn describe_renders_all_variants() {
        let p = Predicate::In("c".into(), vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(p.describe(), "c IN (1, 2)");
        assert_eq!(Predicate::IsNull("x".into()).describe(), "x IS NULL");
        assert_eq!(Predicate::True.describe(), "TRUE");
        assert!(Predicate::eq("a", 1)
            .or(Predicate::eq("b", 2))
            .describe()
            .contains("OR"));
        assert!(Predicate::eq("a", 1).negate().describe().starts_with("NOT"));
    }
}
