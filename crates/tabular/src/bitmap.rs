//! Validity bitmaps: one bit per row, packed into `u64` words.
//!
//! [`EncodedColumn`](crate::EncodedColumn) stores its per-row null mask as a
//! [`Bitmap`] so that multi-column complete-case analysis reduces to a word-wise
//! `AND` over the columns' masks instead of a per-row branch chain, and so the
//! codes themselves can live in a packed `Vec<u32>` with no `Option` overhead.

/// A fixed-length bitmap. Bit `i` lives in word `i / 64` at position `i % 64`.
///
/// Invariant: bits at positions `>= len` in the last word are always zero, so
/// popcounts and set-bit iteration never need edge handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

#[inline]
fn n_words(len: usize) -> usize {
    len.div_ceil(64)
}

impl Bitmap {
    /// A bitmap of `len` bits, all set (all rows valid).
    pub fn new_all_set(len: usize) -> Self {
        let mut words = vec![u64::MAX; n_words(len)];
        if let Some(last) = words.last_mut() {
            let tail = len % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        Bitmap { words, len }
    }

    /// A bitmap of `len` bits, all unset (all rows missing).
    pub fn new_all_unset(len: usize) -> Self {
        Bitmap {
            words: vec![0; n_words(len)],
            len,
        }
    }

    /// An empty bitmap that bits can be [`push`](Bitmap::push)ed onto.
    pub fn with_capacity(bits: usize) -> Self {
        Bitmap {
            words: Vec::with_capacity(n_words(bits)),
            len: 0,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range ({})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range ({})", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range ({})", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Number of set bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of unset bits.
    pub fn count_unset(&self) -> usize {
        self.len - self.count_set()
    }

    /// In-place word-wise `AND` with another bitmap of the same length.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn intersect_with(&mut self, other: &Bitmap) {
        assert_eq!(
            self.len, other.len,
            "bitmap length mismatch in intersection"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// The backing words. Bits beyond `len` in the last word are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates the indices of the set bits in increasing order.
    pub fn iter_set(&self) -> SetBits<'_> {
        SetBits {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over the set-bit indices of a [`Bitmap`].
pub struct SetBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // drop lowest set bit
        Some(self.word_idx * 64 + bit)
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut bm = Bitmap::with_capacity(iter.size_hint().0);
        for bit in iter {
            bm.push(bit);
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_set_masks_tail_word() {
        let bm = Bitmap::new_all_set(70);
        assert_eq!(bm.len(), 70);
        assert_eq!(bm.count_set(), 70);
        assert_eq!(bm.words().len(), 2);
        assert_eq!(bm.words()[1], (1u64 << 6) - 1);
        let exact = Bitmap::new_all_set(64);
        assert_eq!(exact.words()[0], u64::MAX);
        assert_eq!(exact.count_set(), 64);
        assert!(Bitmap::new_all_set(0).is_empty());
    }

    #[test]
    fn push_get_set_clear() {
        let mut bm = Bitmap::with_capacity(3);
        bm.push(true);
        bm.push(false);
        bm.push(true);
        assert_eq!(bm.len(), 3);
        assert!(bm.get(0) && !bm.get(1) && bm.get(2));
        bm.set(1);
        bm.clear(0);
        assert!(!bm.get(0) && bm.get(1));
        assert_eq!(bm.count_set(), 2);
        assert_eq!(bm.count_unset(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitmap::new_all_set(2).get(2);
    }

    #[test]
    fn intersection_is_word_wise_and() {
        let mut a: Bitmap = (0..130).map(|i| i % 2 == 0).collect();
        let b: Bitmap = (0..130).map(|i| i % 3 == 0).collect();
        a.intersect_with(&b);
        for i in 0..130 {
            assert_eq!(a.get(i), i % 6 == 0, "bit {i}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn intersection_length_mismatch_panics() {
        Bitmap::new_all_set(3).intersect_with(&Bitmap::new_all_set(4));
    }

    #[test]
    fn set_bit_iteration_crosses_words() {
        let bm: Bitmap = (0..200).map(|i| i % 63 == 0).collect();
        let got: Vec<usize> = bm.iter_set().collect();
        assert_eq!(got, vec![0, 63, 126, 189]);
        assert!(Bitmap::new_all_unset(100).iter_set().next().is_none());
        assert_eq!(Bitmap::new_all_set(65).iter_set().count(), 65);
    }

    #[test]
    fn from_iterator_round_trip() {
        let bits = [true, false, true, true, false];
        let bm: Bitmap = bits.iter().copied().collect();
        let back: Vec<bool> = (0..bm.len()).map(|i| bm.get(i)).collect();
        assert_eq!(back, bits);
    }
}
