//! Validity bitmaps: one bit per row, packed into `u64` words.
//!
//! [`EncodedColumn`](crate::EncodedColumn) stores its per-row null mask as a
//! [`Bitmap`] so that multi-column complete-case analysis reduces to a word-wise
//! `AND` over the columns' masks instead of a per-row branch chain, and so the
//! codes themselves can live in a packed `Vec<u32>` with no `Option` overhead.

/// A fixed-length bitmap. Bit `i` lives in word `i / 64` at position `i % 64`.
///
/// Invariant: bits at positions `>= len` in the last word are always zero, so
/// popcounts and set-bit iteration never need edge handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

#[inline]
fn n_words(len: usize) -> usize {
    len.div_ceil(64)
}

impl Bitmap {
    /// A bitmap of `len` bits, all set (all rows valid).
    pub fn new_all_set(len: usize) -> Self {
        let mut words = vec![u64::MAX; n_words(len)];
        if let Some(last) = words.last_mut() {
            let tail = len % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        Bitmap { words, len }
    }

    /// A bitmap of `len` bits, all unset (all rows missing).
    pub fn new_all_unset(len: usize) -> Self {
        Bitmap {
            words: vec![0; n_words(len)],
            len,
        }
    }

    /// An empty bitmap that bits can be [`push`](Bitmap::push)ed onto.
    pub fn with_capacity(bits: usize) -> Self {
        Bitmap {
            words: Vec::with_capacity(n_words(bits)),
            len: 0,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range ({})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range ({})", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range ({})", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Number of set bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of unset bits.
    pub fn count_unset(&self) -> usize {
        self.len - self.count_set()
    }

    /// In-place word-wise `AND` with another bitmap of the same length.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn intersect_with(&mut self, other: &Bitmap) {
        assert_eq!(
            self.len, other.len,
            "bitmap length mismatch in intersection"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// The backing words. Bits beyond `len` in the last word are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Whether every bit is set (vacuously true for an empty bitmap).
    ///
    /// Word-level: compares whole words against their expected all-ones
    /// pattern instead of testing bits one by one. The sealer uses this to
    /// gate encodings that cannot represent nulls (delta).
    pub fn all_set(&self) -> bool {
        self.count_set() == self.len
    }

    /// Number of set bits in the half-open range `[start, end)`.
    ///
    /// Word-level: popcounts whole words, masking only the two boundary
    /// words. This is how the kernel intersects the complete-case mask with
    /// one run of a run-length column — a popcount over the run's span
    /// instead of a per-row bit test.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > len`.
    pub fn count_set_range(&self, start: usize, end: usize) -> usize {
        assert!(
            start <= end && end <= self.len,
            "range {start}..{end} out of bounds for bitmap of {} bits",
            self.len
        );
        if start == end {
            return 0;
        }
        let (ws, we) = (start / 64, (end - 1) / 64);
        let head_mask = u64::MAX << (start % 64);
        let tail_mask = u64::MAX >> (63 - (end - 1) % 64);
        if ws == we {
            return (self.words[ws] & head_mask & tail_mask).count_ones() as usize;
        }
        let mut n = (self.words[ws] & head_mask).count_ones() as usize;
        for w in &self.words[ws + 1..we] {
            n += w.count_ones() as usize;
        }
        n + (self.words[we] & tail_mask).count_ones() as usize
    }

    /// Iterates the indices of the set bits in increasing order.
    pub fn iter_set(&self) -> SetBits<'_> {
        self.iter_set_range(0, self.len)
    }

    /// Iterates the set-bit indices of the half-open range `[start, end)` in
    /// increasing order, using the same word-at-a-time walk as
    /// [`iter_set`](Bitmap::iter_set) (boundary words are masked once, then
    /// each word is drained by clearing its lowest set bit).
    ///
    /// # Panics
    /// Panics if `start > end` or `end > len`.
    pub fn iter_set_range(&self, start: usize, end: usize) -> SetBits<'_> {
        assert!(
            start <= end && end <= self.len,
            "range {start}..{end} out of bounds for bitmap of {} bits",
            self.len
        );
        if start == end {
            return SetBits {
                words: &[],
                word_idx: 0,
                current: 0,
                base: 0,
                tail_mask: 0,
            };
        }
        let (ws, we) = (start / 64, (end - 1) / 64);
        let words = &self.words[ws..=we];
        let head_mask = u64::MAX << (start % 64);
        let tail_mask = u64::MAX >> (63 - (end - 1) % 64);
        let mut current = words[0] & head_mask;
        if ws == we {
            current &= tail_mask;
        }
        SetBits {
            words,
            word_idx: 0,
            current,
            base: ws * 64,
            tail_mask,
        }
    }

    /// Iterates the maximal runs of consecutive set bits as half-open
    /// `(start, end)` ranges, in increasing order.
    ///
    /// Word-level: zero words are skipped whole, and run boundaries are found
    /// with `trailing_zeros` on the word (or its complement) instead of
    /// testing bits one by one.
    pub fn iter_runs(&self) -> SetRuns<'_> {
        SetRuns {
            bitmap: self,
            pos: 0,
        }
    }

    /// Index of the first set bit at or after `from`, or `None`.
    fn next_set_bit(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let mut wi = from / 64;
        let mut word = self.words[wi] & (u64::MAX << (from % 64));
        loop {
            if word != 0 {
                return Some(wi * 64 + word.trailing_zeros() as usize);
            }
            wi += 1;
            if wi >= self.words.len() {
                return None;
            }
            word = self.words[wi];
        }
    }

    /// Index of the first *unset* bit at or after `from`, clamped to `len`.
    fn next_unset_bit(&self, from: usize) -> usize {
        if from >= self.len {
            return self.len;
        }
        let mut wi = from / 64;
        // Invert so unset bits become set; mask off bits below `from`.
        let mut word = !self.words[wi] & (u64::MAX << (from % 64));
        loop {
            if word != 0 {
                return (wi * 64 + word.trailing_zeros() as usize).min(self.len);
            }
            wi += 1;
            if wi >= self.words.len() {
                return self.len;
            }
            word = !self.words[wi];
        }
    }
}

/// Iterator over the set-bit indices of a [`Bitmap`] (or a range of one, see
/// [`Bitmap::iter_set_range`]).
pub struct SetBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
    /// Bit index of `words[0]`'s bit 0 in the source bitmap.
    base: usize,
    /// Mask applied to the last word of `words` when it is loaded (range
    /// iteration truncates the final word).
    tail_mask: u64,
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
            if self.word_idx == self.words.len() - 1 {
                self.current &= self.tail_mask;
            }
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // drop lowest set bit
        Some(self.base + self.word_idx * 64 + bit)
    }
}

/// Iterator over the maximal set-bit runs of a [`Bitmap`] as half-open
/// `(start, end)` ranges. See [`Bitmap::iter_runs`].
pub struct SetRuns<'a> {
    bitmap: &'a Bitmap,
    pos: usize,
}

impl Iterator for SetRuns<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        let start = self.bitmap.next_set_bit(self.pos)?;
        let end = self.bitmap.next_unset_bit(start);
        self.pos = end;
        Some((start, end))
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut bm = Bitmap::with_capacity(iter.size_hint().0);
        for bit in iter {
            bm.push(bit);
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_set_masks_tail_word() {
        let bm = Bitmap::new_all_set(70);
        assert_eq!(bm.len(), 70);
        assert_eq!(bm.count_set(), 70);
        assert_eq!(bm.words().len(), 2);
        assert_eq!(bm.words()[1], (1u64 << 6) - 1);
        let exact = Bitmap::new_all_set(64);
        assert_eq!(exact.words()[0], u64::MAX);
        assert_eq!(exact.count_set(), 64);
        assert!(Bitmap::new_all_set(0).is_empty());
    }

    #[test]
    fn push_get_set_clear() {
        let mut bm = Bitmap::with_capacity(3);
        bm.push(true);
        bm.push(false);
        bm.push(true);
        assert_eq!(bm.len(), 3);
        assert!(bm.get(0) && !bm.get(1) && bm.get(2));
        bm.set(1);
        bm.clear(0);
        assert!(!bm.get(0) && bm.get(1));
        assert_eq!(bm.count_set(), 2);
        assert_eq!(bm.count_unset(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitmap::new_all_set(2).get(2);
    }

    #[test]
    fn intersection_is_word_wise_and() {
        let mut a: Bitmap = (0..130).map(|i| i % 2 == 0).collect();
        let b: Bitmap = (0..130).map(|i| i % 3 == 0).collect();
        a.intersect_with(&b);
        for i in 0..130 {
            assert_eq!(a.get(i), i % 6 == 0, "bit {i}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn intersection_length_mismatch_panics() {
        Bitmap::new_all_set(3).intersect_with(&Bitmap::new_all_set(4));
    }

    #[test]
    fn set_bit_iteration_crosses_words() {
        let bm: Bitmap = (0..200).map(|i| i % 63 == 0).collect();
        let got: Vec<usize> = bm.iter_set().collect();
        assert_eq!(got, vec![0, 63, 126, 189]);
        assert!(Bitmap::new_all_unset(100).iter_set().next().is_none());
        assert_eq!(Bitmap::new_all_set(65).iter_set().count(), 65);
    }

    #[test]
    fn all_set_detection() {
        assert!(Bitmap::new_all_set(130).all_set());
        assert!(Bitmap::new_all_set(0).all_set());
        assert!(!Bitmap::new_all_unset(1).all_set());
        let mut bm = Bitmap::new_all_set(65);
        bm.clear(64);
        assert!(!bm.all_set());
    }

    #[test]
    fn count_set_range_matches_naive() {
        let bm: Bitmap = (0..300).map(|i| i % 3 == 0 || i % 7 == 0).collect();
        for &(s, e) in &[
            (0, 0),
            (0, 300),
            (0, 1),
            (5, 64),
            (63, 65),
            (64, 128),
            (64, 129),
            (10, 250),
            (299, 300),
            (128, 128),
        ] {
            let naive = (s..e).filter(|&i| bm.get(i)).count();
            assert_eq!(bm.count_set_range(s, e), naive, "range {s}..{e}");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn count_set_range_rejects_bad_range() {
        Bitmap::new_all_set(10).count_set_range(3, 11);
    }

    #[test]
    fn iter_set_range_matches_naive() {
        let bm: Bitmap = (0..300).map(|i| i % 5 == 0 || i % 11 == 3).collect();
        for &(s, e) in &[
            (0, 0),
            (0, 300),
            (5, 64),
            (63, 66),
            (64, 192),
            (100, 101),
            (1, 299),
        ] {
            let naive: Vec<usize> = (s..e).filter(|&i| bm.get(i)).collect();
            let got: Vec<usize> = bm.iter_set_range(s, e).collect();
            assert_eq!(got, naive, "range {s}..{e}");
        }
        // full-range iteration equals iter_set
        assert_eq!(
            bm.iter_set().collect::<Vec<_>>(),
            bm.iter_set_range(0, bm.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn set_runs_match_naive_grouping() {
        let patterns: Vec<Vec<bool>> = vec![
            vec![],
            vec![true],
            vec![false],
            (0..200).map(|i| i % 3 != 0).collect(),
            (0..70).map(|_| true).collect(),
            (0..70).map(|_| false).collect(),
            (0..256).map(|i| (i / 64) % 2 == 0).collect(),
            (0..130).map(|i| (60..90).contains(&i)).collect(),
        ];
        for bits in patterns {
            let bm: Bitmap = bits.iter().copied().collect();
            // naive run grouping
            let mut naive = Vec::new();
            let mut i = 0;
            while i < bits.len() {
                if bits[i] {
                    let start = i;
                    while i < bits.len() && bits[i] {
                        i += 1;
                    }
                    naive.push((start, i));
                } else {
                    i += 1;
                }
            }
            let got: Vec<(usize, usize)> = bm.iter_runs().collect();
            assert_eq!(got, naive, "pattern of {} bits", bits.len());
        }
    }

    #[test]
    fn from_iterator_round_trip() {
        let bits = [true, false, true, true, false];
        let bm: Bitmap = bits.iter().copied().collect();
        let back: Vec<bool> = (0..bm.len()).map(|i| bm.get(i)).collect();
        assert_eq!(back, bits);
    }
}
