//! Typed, null-aware columns.
//!
//! Columns store data in typed vectors. Categorical data is
//! dictionary-encoded: the column holds a dictionary of distinct strings and a
//! vector of `u32` codes, which keeps memory compact for the multi-million row
//! datasets used in the paper's Flights experiments and makes the
//! information-theoretic estimators (which work over discrete codes) cheap.

use std::collections::HashMap;

use crate::bitmap::Bitmap;
use crate::error::{Result, TabularError};
use crate::value::{DType, Value};

/// The physical storage backing a [`Column`].
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers with per-cell nullability.
    Int(Vec<Option<i64>>),
    /// 64-bit floats with per-cell nullability.
    Float(Vec<Option<f64>>),
    /// Booleans with per-cell nullability.
    Bool(Vec<Option<bool>>),
    /// Dictionary-encoded strings: `codes[i]` indexes into `dict`.
    Categorical {
        /// The dictionary of distinct string values.
        dict: Vec<String>,
        /// Per-row dictionary codes (`None` = null).
        codes: Vec<Option<u32>>,
    },
}

/// A named, typed, null-aware column.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    name: String,
    data: ColumnData,
}

impl Column {
    /// Builds an integer column.
    pub fn from_i64(name: impl Into<String>, values: Vec<Option<i64>>) -> Self {
        Column {
            name: name.into(),
            data: ColumnData::Int(values),
        }
    }

    /// Builds a float column.
    pub fn from_f64(name: impl Into<String>, values: Vec<Option<f64>>) -> Self {
        Column {
            name: name.into(),
            data: ColumnData::Float(values),
        }
    }

    /// Builds a boolean column.
    pub fn from_bool(name: impl Into<String>, values: Vec<Option<bool>>) -> Self {
        Column {
            name: name.into(),
            data: ColumnData::Bool(values),
        }
    }

    /// Builds a categorical column from string values, dictionary-encoding
    /// them in order of first appearance.
    pub fn from_str_values<S: AsRef<str>>(name: impl Into<String>, values: Vec<Option<S>>) -> Self {
        let mut dict: Vec<String> = Vec::new();
        let mut index: HashMap<String, u32> = HashMap::new();
        let mut codes = Vec::with_capacity(values.len());
        for v in values {
            match v {
                None => codes.push(None),
                Some(s) => {
                    let s = s.as_ref();
                    let code = match index.get(s) {
                        Some(&c) => c,
                        None => {
                            let c = dict.len() as u32;
                            dict.push(s.to_string());
                            index.insert(s.to_string(), c);
                            c
                        }
                    };
                    codes.push(Some(code));
                }
            }
        }
        Column {
            name: name.into(),
            data: ColumnData::Categorical { dict, codes },
        }
    }

    /// Builds a column from dynamically typed values, inferring the type from
    /// the first non-null value. Mixed int/float columns are promoted to
    /// float; anything else mixed becomes categorical (via rendering).
    pub fn from_values(name: impl Into<String>, values: Vec<Value>) -> Self {
        let name = name.into();
        let mut dtype: Option<DType> = None;
        for v in &values {
            match (dtype, v.dtype()) {
                (None, Some(d)) => dtype = Some(d),
                (Some(DType::Int), Some(DType::Float)) | (Some(DType::Float), Some(DType::Int)) => {
                    dtype = Some(DType::Float)
                }
                (Some(a), Some(b)) if a != b => {
                    dtype = Some(DType::Categorical);
                    break;
                }
                _ => {}
            }
        }
        match dtype.unwrap_or(DType::Categorical) {
            DType::Int => Column::from_i64(name, values.iter().map(|v| v.as_i64()).collect()),
            DType::Float => Column::from_f64(name, values.iter().map(|v| v.as_f64()).collect()),
            DType::Bool => Column::from_bool(name, values.iter().map(|v| v.as_bool()).collect()),
            DType::Categorical => Column::from_str_values(
                name,
                values
                    .iter()
                    .map(|v| if v.is_null() { None } else { Some(v.render()) })
                    .collect(),
            ),
        }
    }

    /// Builds a constant column of the given length.
    pub fn constant(name: impl Into<String>, value: Value, len: usize) -> Self {
        Column::from_values(name.into(), vec![value; len])
    }

    /// The column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the column in place.
    pub fn rename(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Returns a copy of the column with a new name.
    pub fn with_name(&self, name: impl Into<String>) -> Self {
        Column {
            name: name.into(),
            data: self.data.clone(),
        }
    }

    /// The logical type of the column.
    pub fn dtype(&self) -> DType {
        match &self.data {
            ColumnData::Int(_) => DType::Int,
            ColumnData::Float(_) => DType::Float,
            ColumnData::Bool(_) => DType::Bool,
            ColumnData::Categorical { .. } => DType::Categorical,
        }
    }

    /// Borrow the physical storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Number of rows (including nulls).
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Categorical { codes, .. } => codes.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap footprint in bytes (cell storage plus, for
    /// categorical columns, the dictionary strings). Used by cache byte
    /// budgets; an estimate, not an allocator-accurate measurement.
    pub fn approx_bytes(&self) -> usize {
        let cells = match &self.data {
            ColumnData::Int(v) => v.len() * std::mem::size_of::<Option<i64>>(),
            ColumnData::Float(v) => v.len() * std::mem::size_of::<Option<f64>>(),
            ColumnData::Bool(v) => v.len() * std::mem::size_of::<Option<bool>>(),
            ColumnData::Categorical { dict, codes } => {
                codes.len() * std::mem::size_of::<Option<u32>>()
                    + dict
                        .iter()
                        .map(|s| s.len() + std::mem::size_of::<String>())
                        .sum::<usize>()
            }
        };
        cells + self.name.len()
    }

    /// Number of null (missing) cells.
    pub fn null_count(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.iter().filter(|x| x.is_none()).count(),
            ColumnData::Float(v) => v.iter().filter(|x| x.is_none()).count(),
            ColumnData::Bool(v) => v.iter().filter(|x| x.is_none()).count(),
            ColumnData::Categorical { codes, .. } => codes.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Fraction of null cells in `[0, 1]`; 0 for an empty column.
    pub fn null_fraction(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.null_count() as f64 / self.len() as f64
        }
    }

    /// Returns `true` if the i-th cell is missing.
    pub fn is_null_at(&self, i: usize) -> bool {
        match &self.data {
            ColumnData::Int(v) => v[i].is_none(),
            ColumnData::Float(v) => v[i].is_none(),
            ColumnData::Bool(v) => v[i].is_none(),
            ColumnData::Categorical { codes, .. } => codes[i].is_none(),
        }
    }

    /// Fetches the i-th cell as a dynamic value.
    pub fn get(&self, i: usize) -> Result<Value> {
        if i >= self.len() {
            return Err(TabularError::RowOutOfBounds {
                index: i,
                len: self.len(),
            });
        }
        Ok(match &self.data {
            ColumnData::Int(v) => v[i].map(Value::Int).unwrap_or(Value::Null),
            ColumnData::Float(v) => v[i].map(Value::Float).unwrap_or(Value::Null),
            ColumnData::Bool(v) => v[i].map(Value::Bool).unwrap_or(Value::Null),
            ColumnData::Categorical { dict, codes } => codes[i]
                .map(|c| Value::Str(dict[c as usize].clone()))
                .unwrap_or(Value::Null),
        })
    }

    /// Iterates all cells as dynamic values (materialising strings).
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i).expect("index in range"))
    }

    /// Numeric view of the column: every cell as `Option<f64>`.
    /// Categorical cells map to `None`. Binning and the quantile helpers
    /// avoid this copy for float columns by borrowing the backing slice
    /// directly (see `f64_view` in the binning module).
    pub fn to_f64(&self) -> Vec<Option<f64>> {
        match &self.data {
            ColumnData::Int(v) => v.iter().map(|x| x.map(|x| x as f64)).collect(),
            ColumnData::Float(v) => v.clone(),
            ColumnData::Bool(v) => v
                .iter()
                .map(|x| x.map(|b| if b { 1.0 } else { 0.0 }))
                .collect(),
            ColumnData::Categorical { codes, .. } => codes.iter().map(|_| None).collect(),
        }
    }

    /// Selects the rows at `indices`, producing a new column.
    pub fn take(&self, indices: &[usize]) -> Column {
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Float(v) => ColumnData::Float(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Categorical { dict, codes } => ColumnData::Categorical {
                dict: dict.clone(),
                codes: indices.iter().map(|&i| codes[i]).collect(),
            },
        };
        Column {
            name: self.name.clone(),
            data,
        }
    }

    /// Gathers rows through an optional row map: `rows[i] = Some(r)` takes row
    /// `r`, `None` produces a null. The physical dtype (and, for categorical
    /// columns, the dictionary) is preserved exactly — this is the typed
    /// per-column gather kernel behind the code-based join, replacing the
    /// boxed-`Value`-per-cell path.
    ///
    /// # Panics
    /// Panics if any `Some(r)` is out of range.
    pub fn take_opt(&self, rows: &[Option<usize>]) -> Column {
        let data = match &self.data {
            ColumnData::Int(v) => {
                ColumnData::Int(rows.iter().map(|r| r.and_then(|i| v[i])).collect())
            }
            ColumnData::Float(v) => {
                ColumnData::Float(rows.iter().map(|r| r.and_then(|i| v[i])).collect())
            }
            ColumnData::Bool(v) => {
                ColumnData::Bool(rows.iter().map(|r| r.and_then(|i| v[i])).collect())
            }
            ColumnData::Categorical { dict, codes } => ColumnData::Categorical {
                dict: dict.clone(),
                codes: rows.iter().map(|r| r.and_then(|i| codes[i])).collect(),
            },
        };
        Column {
            name: self.name.clone(),
            data,
        }
    }

    /// Keeps only rows where `mask[i]` is true. The mask length must equal the
    /// column length.
    pub fn filter(&self, mask: &[bool]) -> Result<Column> {
        if mask.len() != self.len() {
            return Err(TabularError::LengthMismatch {
                expected: self.len(),
                got: mask.len(),
            });
        }
        let indices: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| i)
            .collect();
        Ok(self.take(&indices))
    }

    /// Appends all rows of another column of the same logical type.
    pub fn append(&mut self, other: &Column) -> Result<()> {
        if self.dtype() != other.dtype() {
            return Err(TabularError::TypeMismatch {
                column: self.name.clone(),
                expected: self.dtype().name(),
                got: other.dtype().name(),
            });
        }
        match (&mut self.data, &other.data) {
            (ColumnData::Int(a), ColumnData::Int(b)) => a.extend_from_slice(b),
            (ColumnData::Float(a), ColumnData::Float(b)) => a.extend_from_slice(b),
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a.extend_from_slice(b),
            (
                ColumnData::Categorical { dict, codes },
                ColumnData::Categorical {
                    dict: odict,
                    codes: ocodes,
                },
            ) => {
                // Re-map the other dictionary into ours.
                let mut index: HashMap<String, u32> = dict
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.clone(), i as u32))
                    .collect();
                let mut remap = Vec::with_capacity(odict.len());
                for s in odict {
                    let code = match index.get(s.as_str()) {
                        Some(&c) => c,
                        None => {
                            let c = dict.len() as u32;
                            dict.push(s.clone());
                            index.insert(s.clone(), c);
                            c
                        }
                    };
                    remap.push(code);
                }
                codes.extend(ocodes.iter().map(|c| c.map(|c| remap[c as usize])));
            }
            _ => unreachable!("dtype equality checked above"),
        }
        Ok(())
    }

    /// Sets the i-th cell to null (used by missing-data injectors).
    pub fn set_null(&mut self, i: usize) -> Result<()> {
        if i >= self.len() {
            return Err(TabularError::RowOutOfBounds {
                index: i,
                len: self.len(),
            });
        }
        match &mut self.data {
            ColumnData::Int(v) => v[i] = None,
            ColumnData::Float(v) => v[i] = None,
            ColumnData::Bool(v) => v[i] = None,
            ColumnData::Categorical { codes, .. } => codes[i] = None,
        }
        Ok(())
    }

    /// Overwrites the i-th cell with a new value of a compatible type.
    pub fn set(&mut self, i: usize, value: Value) -> Result<()> {
        if i >= self.len() {
            return Err(TabularError::RowOutOfBounds {
                index: i,
                len: self.len(),
            });
        }
        if value.is_null() {
            return self.set_null(i);
        }
        match &mut self.data {
            ColumnData::Int(v) => {
                let x = value
                    .as_f64()
                    .ok_or_else(|| TabularError::InvalidValue(value.render()))?;
                v[i] = Some(x.round() as i64);
            }
            ColumnData::Float(v) => {
                v[i] = Some(
                    value
                        .as_f64()
                        .ok_or_else(|| TabularError::InvalidValue(value.render()))?,
                )
            }
            ColumnData::Bool(v) => {
                v[i] = Some(
                    value
                        .as_bool()
                        .ok_or_else(|| TabularError::InvalidValue(value.render()))?,
                )
            }
            ColumnData::Categorical { dict, codes } => {
                let s = value.render();
                let code = match dict.iter().position(|d| d == &s) {
                    Some(p) => p as u32,
                    None => {
                        dict.push(s);
                        (dict.len() - 1) as u32
                    }
                };
                codes[i] = Some(code);
            }
        }
        Ok(())
    }

    /// Number of distinct non-null values.
    pub fn n_distinct(&self) -> usize {
        self.encode().cardinality()
    }

    /// Mean of the numeric view (ignores nulls and non-numeric cells).
    pub fn mean(&self) -> Option<f64> {
        let vals = self.to_f64();
        let (mut sum, mut n) = (0.0, 0usize);
        for v in vals.into_iter().flatten() {
            sum += v;
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Discrete encoding of the column: every distinct non-null value becomes
    /// a code in `0..cardinality`. This is the representation consumed by the
    /// information-theoretic estimators.
    pub fn encode(&self) -> EncodedColumn {
        /// Shared encoding loop: dictionary-encodes the distinct keys of the
        /// cells in order of first appearance, writing packed codes and the
        /// validity bitmap in one pass.
        fn encode_cells<K, L, I>(n: usize, cells: I, mut render: L) -> EncodedColumn
        where
            K: std::hash::Hash + Eq + Copy,
            L: FnMut(K) -> String,
            I: Iterator<Item = Option<K>>,
        {
            let mut index: HashMap<K, u32> = HashMap::new();
            let mut labels = Vec::new();
            let mut codes = Vec::with_capacity(n);
            let mut validity = Bitmap::with_capacity(n);
            for cell in cells {
                match cell {
                    None => {
                        codes.push(0);
                        validity.push(false);
                    }
                    Some(key) => {
                        let next = index.len() as u32;
                        let code = *index.entry(key).or_insert_with(|| {
                            labels.push(render(key));
                            next
                        });
                        codes.push(code);
                        validity.push(true);
                    }
                }
            }
            EncodedColumn {
                codes,
                validity,
                labels,
            }
        }

        let n = self.len();
        match &self.data {
            // Already dictionary-encoded: remap the existing codes through a
            // dense `Vec` lookup (no hashing at all) so only the codes
            // actually present get a slot — cardinality reflects the data,
            // not the dictionary (which may contain stale entries after
            // filtering or a gather join).
            ColumnData::Categorical { dict, codes } => {
                let mut remap: Vec<Option<u32>> = vec![None; dict.len()];
                let mut labels = Vec::new();
                let mut packed = Vec::with_capacity(n);
                let mut validity = Bitmap::with_capacity(n);
                for cell in codes {
                    match cell {
                        None => {
                            packed.push(0);
                            validity.push(false);
                        }
                        Some(c) => {
                            let slot = &mut remap[*c as usize];
                            let code = match *slot {
                                Some(code) => code,
                                None => {
                                    let code = labels.len() as u32;
                                    labels.push(dict[*c as usize].clone());
                                    *slot = Some(code);
                                    code
                                }
                            };
                            packed.push(code);
                            validity.push(true);
                        }
                    }
                }
                EncodedColumn {
                    codes: packed,
                    validity,
                    labels,
                }
            }
            ColumnData::Int(v) => encode_cells(n, v.iter().copied(), |x| x.to_string()),
            ColumnData::Bool(v) => encode_cells(n, v.iter().copied(), |x| x.to_string()),
            // Floats are encoded by bit pattern of their canonical form.
            // Typically callers bin numeric columns before encoding, but
            // exact encoding keeps small domains (like per-group means)
            // usable directly.
            ColumnData::Float(v) => encode_cells(
                n,
                v.iter().map(|x| {
                    x.map(|x| {
                        if x == 0.0 {
                            0.0f64.to_bits()
                        } else {
                            x.to_bits()
                        }
                    })
                }),
                |bits| format!("{}", f64::from_bits(bits)),
            ),
        }
    }
}

/// The discrete encoding of a column: packed integer codes, a validity bitmap
/// marking which rows are non-null, and the label of each code.
///
/// The codes are stored densely (`Vec<u32>`, one slot per row) with a
/// separate [`Bitmap`] null mask instead of `Vec<Option<u32>>`. This halves
/// the memory per cell and lets the information-theoretic kernel compute the
/// complete-case mask of a multi-column build with one word-wise bitmap `AND`
/// per column. Slots at invalid positions hold `0` and must never be read
/// directly; use [`code_at`](EncodedColumn::code_at) or consult
/// [`validity`](EncodedColumn::validity) before touching
/// [`codes`](EncodedColumn::codes).
///
/// Invariant: every code at a valid position is `< cardinality`, where the
/// cardinality (number of distinct non-null values present) always equals
/// `labels.len()`.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedColumn {
    codes: Vec<u32>,
    validity: Bitmap,
    labels: Vec<String>,
}

impl EncodedColumn {
    /// Builds an encoding from packed parts: one code slot per row and a
    /// validity bitmap of the same length. Slots at invalid positions are
    /// normalised to `0` so that equal encodings compare equal regardless of
    /// what the caller left in the dead slots.
    ///
    /// # Panics
    /// Panics if the bitmap length differs from the code count, or if a valid
    /// slot holds a code `>= labels.len()`.
    pub fn from_parts(mut codes: Vec<u32>, validity: Bitmap, labels: Vec<String>) -> Self {
        assert_eq!(
            codes.len(),
            validity.len(),
            "validity bitmap must have one bit per code slot"
        );
        let card = labels.len() as u32;
        for (row, code) in codes.iter_mut().enumerate() {
            if validity.get(row) {
                assert!(
                    *code < card,
                    "code {code} at row {row} exceeds cardinality {card}"
                );
            } else {
                *code = 0;
            }
        }
        EncodedColumn {
            codes,
            validity,
            labels,
        }
    }

    /// Compatibility constructor from per-row optional codes (`None` =
    /// missing). Call sites that used to fill `Vec<Option<u32>>` migrate here
    /// mechanically.
    ///
    /// # Panics
    /// Panics if a present code is `>= labels.len()`.
    pub fn from_option_codes<I>(codes: I, labels: Vec<String>) -> Self
    where
        I: IntoIterator<Item = Option<u32>>,
    {
        let iter = codes.into_iter();
        let hint = iter.size_hint().0;
        let mut packed = Vec::with_capacity(hint);
        let mut validity = Bitmap::with_capacity(hint);
        for code in iter {
            packed.push(code.unwrap_or(0));
            validity.push(code.is_some());
        }
        EncodedColumn::from_parts(packed, validity, labels)
    }

    /// Builds a fully observed encoding (no missing rows).
    ///
    /// # Panics
    /// Panics if a code is `>= labels.len()`.
    pub fn from_codes(codes: Vec<u32>, labels: Vec<String>) -> Self {
        let validity = Bitmap::new_all_set(codes.len());
        EncodedColumn::from_parts(codes, validity, labels)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the encoding has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of distinct codes (equal to the number of labels).
    pub fn cardinality(&self) -> usize {
        self.labels.len()
    }

    /// Human-readable label for each code, indexed by code.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The label of one code.
    ///
    /// # Panics
    /// Panics if `code >= cardinality`.
    pub fn label(&self, code: u32) -> &str {
        &self.labels[code as usize]
    }

    /// The packed per-row codes. Slots where the validity bit is unset hold
    /// `0` and carry no meaning.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The validity bitmap: bit `i` set ⇔ row `i` is non-null.
    pub fn validity(&self) -> &Bitmap {
        &self.validity
    }

    /// Whether row `i` is non-null.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn is_present(&self, i: usize) -> bool {
        self.validity.get(i)
    }

    /// The code of row `i`, or `None` when the row is null.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn code_at(&self, i: usize) -> Option<u32> {
        if self.validity.get(i) {
            Some(self.codes[i])
        } else {
            None
        }
    }

    /// Iterates all rows as optional codes, in row order.
    pub fn iter_codes(&self) -> impl Iterator<Item = Option<u32>> + '_ {
        (0..self.len()).map(move |i| self.code_at(i))
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        self.validity.count_unset()
    }

    /// Number of non-null rows.
    pub fn n_present(&self) -> usize {
        self.validity.count_set()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat(vals: &[Option<&str>]) -> Column {
        Column::from_str_values("c", vals.to_vec())
    }

    #[test]
    fn build_and_basic_accessors() {
        let c = Column::from_i64("age", vec![Some(30), None, Some(40)]);
        assert_eq!(c.name(), "age");
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.dtype(), DType::Int);
        assert_eq!(c.get(0).unwrap(), Value::Int(30));
        assert_eq!(c.get(1).unwrap(), Value::Null);
        assert!(c.get(5).is_err());
        assert!((c.null_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn categorical_dictionary_encoding() {
        let c = cat(&[Some("DE"), Some("US"), Some("DE"), None]);
        assert_eq!(c.dtype(), DType::Categorical);
        assert_eq!(c.get(2).unwrap(), Value::Str("DE".into()));
        assert!(c.is_null_at(3));
        let enc = c.encode();
        assert_eq!(enc.cardinality(), 2);
        assert_eq!(
            enc.iter_codes().collect::<Vec<_>>(),
            vec![Some(0), Some(1), Some(0), None]
        );
        assert_eq!(enc.labels(), &["DE".to_string(), "US".to_string()]);
        assert_eq!(enc.null_count(), 1);
        assert_eq!(enc.n_present(), 3);
        assert_eq!(enc.code_at(1), Some(1));
        assert_eq!(enc.code_at(3), None);
        assert!(!enc.is_present(3));
        assert_eq!(enc.label(0), "DE");
    }

    #[test]
    fn from_values_type_inference() {
        let c = Column::from_values("x", vec![Value::Int(1), Value::Null, Value::Int(3)]);
        assert_eq!(c.dtype(), DType::Int);
        let c = Column::from_values("x", vec![Value::Int(1), Value::Float(2.5)]);
        assert_eq!(c.dtype(), DType::Float);
        assert_eq!(c.get(0).unwrap(), Value::Float(1.0));
        let c = Column::from_values("x", vec![Value::Str("a".into()), Value::Int(1)]);
        assert_eq!(c.dtype(), DType::Categorical);
        let c = Column::from_values("x", vec![Value::Null, Value::Null]);
        assert_eq!(c.dtype(), DType::Categorical);
        assert_eq!(c.null_count(), 2);
    }

    #[test]
    fn take_and_filter() {
        let c = Column::from_f64("x", vec![Some(1.0), Some(2.0), None, Some(4.0)]);
        let t = c.take(&[3, 0]);
        assert_eq!(t.get(0).unwrap(), Value::Float(4.0));
        assert_eq!(t.get(1).unwrap(), Value::Float(1.0));
        let f = c.filter(&[true, false, true, false]).unwrap();
        assert_eq!(f.len(), 2);
        assert!(f.is_null_at(1));
        assert!(c.filter(&[true]).is_err());
    }

    #[test]
    fn append_categorical_remaps_dictionary() {
        let mut a = cat(&[Some("x"), Some("y")]);
        let b = cat(&[Some("y"), Some("z"), None]);
        a.append(&b).unwrap();
        assert_eq!(a.len(), 5);
        assert_eq!(a.get(2).unwrap(), Value::Str("y".into()));
        assert_eq!(a.get(3).unwrap(), Value::Str("z".into()));
        assert!(a.is_null_at(4));
        assert_eq!(a.encode().cardinality(), 3);
    }

    #[test]
    fn append_type_mismatch() {
        let mut a = Column::from_i64("x", vec![Some(1)]);
        let b = Column::from_f64("x", vec![Some(1.0)]);
        assert!(a.append(&b).is_err());
    }

    #[test]
    fn set_and_set_null() {
        let mut c = Column::from_i64("x", vec![Some(1), Some(2)]);
        c.set_null(0).unwrap();
        assert!(c.is_null_at(0));
        c.set(1, Value::Int(9)).unwrap();
        assert_eq!(c.get(1).unwrap(), Value::Int(9));
        let mut s = cat(&[Some("a")]);
        s.set(0, Value::Str("b".into())).unwrap();
        assert_eq!(s.get(0).unwrap(), Value::Str("b".into()));
    }

    #[test]
    fn encode_after_filter_has_tight_cardinality() {
        let c = cat(&[Some("a"), Some("b"), Some("c"), Some("a")]);
        let f = c.filter(&[true, false, false, true]).unwrap();
        // dictionary still contains b and c, but only "a" is present
        assert_eq!(f.encode().cardinality(), 1);
    }

    #[test]
    fn numeric_views_and_mean() {
        let c = Column::from_i64("x", vec![Some(1), Some(3), None]);
        assert_eq!(c.to_f64(), vec![Some(1.0), Some(3.0), None]);
        assert_eq!(c.mean(), Some(2.0));
        let empty = Column::from_f64("y", vec![None, None]);
        assert_eq!(empty.mean(), None);
        let b = Column::from_bool("b", vec![Some(true), Some(false)]);
        assert_eq!(b.to_f64(), vec![Some(1.0), Some(0.0)]);
    }

    #[test]
    fn n_distinct_counts_non_null() {
        let c = Column::from_i64("x", vec![Some(1), Some(1), Some(2), None]);
        assert_eq!(c.n_distinct(), 2);
        let f = Column::from_f64("x", vec![Some(0.0), Some(-0.0), Some(1.0)]);
        assert_eq!(f.n_distinct(), 2); // 0.0 and -0.0 canonicalised
    }

    #[test]
    fn constant_column() {
        let c = Column::constant("k", Value::Str("same".into()), 4);
        assert_eq!(c.len(), 4);
        assert_eq!(c.n_distinct(), 1);
    }

    #[test]
    fn encoded_column_constructors_agree() {
        let labels = vec!["a".to_string(), "b".to_string()];
        let from_opts =
            EncodedColumn::from_option_codes(vec![Some(0), None, Some(1), Some(0)], labels.clone());
        let from_parts = EncodedColumn::from_parts(
            vec![0, 0, 1, 0],
            [true, false, true, true].into_iter().collect(),
            labels.clone(),
        );
        assert_eq!(from_opts, from_parts);
        assert_eq!(from_opts.cardinality(), 2);
        let full = EncodedColumn::from_codes(vec![0, 1, 1], labels);
        assert_eq!(full.null_count(), 0);
        assert_eq!(full.code_at(2), Some(1));
    }

    #[test]
    #[should_panic(expected = "exceeds cardinality")]
    fn encoded_column_rejects_out_of_range_codes() {
        EncodedColumn::from_codes(vec![0, 2], vec!["only".to_string()]);
    }

    #[test]
    #[should_panic(expected = "one bit per code slot")]
    fn encoded_column_rejects_length_mismatch() {
        EncodedColumn::from_parts(vec![0], Bitmap::new_all_set(2), vec!["a".to_string()]);
    }

    #[test]
    fn with_name_and_rename() {
        let mut c = Column::from_i64("a", vec![Some(1)]);
        let d = c.with_name("b");
        assert_eq!(d.name(), "b");
        c.rename("z");
        assert_eq!(c.name(), "z");
    }
}
