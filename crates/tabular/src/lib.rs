//! # tabular
//!
//! A small, null-aware, columnar in-memory table engine.
//!
//! This crate is the relational substrate of the MESA reproduction: it stores
//! the input datasets and the attributes MESA extracts from a knowledge graph,
//! evaluates the aggregate group-by queries whose correlations the system
//! explains, and provides binning/encoding for the information-theoretic
//! estimators.
//!
//! Main entry points:
//!
//! * [`DataFrame`] / [`Column`] — the table and column types.
//! * [`AggregateQuery`] — `SELECT T, agg(O) FROM D WHERE C GROUP BY T`.
//! * [`Predicate`] — the `WHERE` clause / context `C` and its refinements.
//! * [`bin_frame`] — discretisation for numeric attributes.
//! * [`read_csv`] / [`write_csv`] — persistence.
//!
//! ```
//! use tabular::{AggregateQuery, DataFrameBuilder, Predicate};
//!
//! let df = DataFrameBuilder::new()
//!     .cat("Country", vec![Some("Germany"), Some("Italy"), Some("Germany")])
//!     .float("Deaths", vec![Some(2.1), Some(12.5), Some(2.3)])
//!     .build()
//!     .unwrap();
//! let q = AggregateQuery::avg("Country", "Deaths");
//! let result = q.run(&df).unwrap();
//! assert_eq!(result.n_rows(), 2);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod binning;
pub mod bitmap;
pub mod column;
pub mod csv;
pub mod dataframe;
pub mod error;
pub mod expr;
pub mod groupby;
pub mod join;
pub mod query;
pub mod storage;
pub mod value;

pub use aggregate::AggFn;
pub use binning::{
    bin_column, bin_column_encoded, bin_frame, bin_frame_encoded, quantile, BinStrategy,
};
pub use bitmap::Bitmap;
pub use column::{Column, ColumnData, EncodedColumn};
pub use csv::{read_csv, read_csv_str, write_csv, write_csv_str};
pub use dataframe::{DataFrame, DataFrameBuilder};
pub use error::{Result, TabularError};
pub use expr::Predicate;
pub use groupby::{group_aggregate, group_by, Group};
pub use join::{join, join_rendered, JoinKind};
pub use query::AggregateQuery;
pub use storage::{
    Access, ColumnView, Encoding, EncodingChoice, PackedInts, Run, RunIter, SealedColumn,
    SealedView,
};
pub use value::{parse_token, DType, Value};
