//! Hash joins between frames.
//!
//! MESA joins the input table `T` with the table of extracted KG attributes
//! `E` on the entity column (e.g. `Country`). The extracted table has at most
//! one row per entity, so the join used throughout is a left equi-join.

use std::collections::HashMap;

use crate::column::Column;
use crate::dataframe::DataFrame;
use crate::error::Result;
use crate::value::Value;

/// Join flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Keep only rows with a match on both sides.
    Inner,
    /// Keep every left row; unmatched right columns become null.
    Left,
}

/// Joins `left` and `right` on `left_on = right_on`.
///
/// Right columns whose names collide with a left column are suffixed with
/// `"_right"` (then `"_right2"`, … — see [`join_rendered`] for the shared
/// rename rule). When several right rows match a left row, the first match
/// wins (the extracted-attribute tables MESA builds are keyed by entity, so
/// duplicates indicate a malformed extraction and are not multiplied out).
///
/// This is the columnar code-based implementation: both key columns are
/// dictionary-encoded once, key matching happens per *distinct* key label
/// (one hash probe per distinct left code, then a flat array lookup per row),
/// and right columns are gathered through typed per-dtype kernels
/// ([`Column::take_opt`]) that preserve the physical dtype instead of boxing
/// every cell as a [`Value`]. Keys compare by encoding label, not rendered
/// string; for string, int, and bool keys the two are identical, while float
/// keys canonicalise `-0.0` to `0.0` and print without a forced `.0` suffix
/// (so integral float keys match equal int keys and no longer match the
/// string `"2.0"`) — the only observable divergences from the reference
/// join, and only for float-keyed joins, which the MESA pipeline never
/// performs.
pub fn join(
    left: &DataFrame,
    right: &DataFrame,
    left_on: &str,
    right_on: &str,
    kind: JoinKind,
) -> Result<DataFrame> {
    let left_key = left.column(left_on)?.encode();
    let right_key = right.column(right_on)?.encode();

    // First right row per distinct right key. Codes are assigned in order of
    // first appearance, so scanning rows once fills each slot with the first
    // matching row — the same "first match wins" rule as the reference join.
    let mut first_right_row: Vec<usize> = vec![usize::MAX; right_key.cardinality()];
    for (row, code) in right_key.iter_codes().enumerate() {
        if let Some(code) = code {
            let slot = &mut first_right_row[code as usize];
            if *slot == usize::MAX {
                *slot = row;
            }
        }
    }

    // Match on dictionary codes: resolve each distinct *left* label to its
    // right row once, then the per-row loop is a plain array lookup.
    let right_index: HashMap<&str, u32> = right_key
        .labels()
        .iter()
        .enumerate()
        .map(|(code, label)| (label.as_str(), code as u32))
        .collect();
    let left_code_to_right_row: Vec<Option<usize>> = left_key
        .labels()
        .iter()
        .map(|label| {
            right_index
                .get(label.as_str())
                .map(|&code| first_right_row[code as usize])
                .filter(|&row| row != usize::MAX)
        })
        .collect();

    // The row map: for every surviving left row, the right row to gather
    // (`None` = unmatched, gathers nulls).
    let mut right_rows: Vec<Option<usize>> = Vec::with_capacity(left_key.len());
    let mut left_rows: Vec<usize> = Vec::new();
    let all_left_rows = match kind {
        JoinKind::Left => {
            for code in left_key.iter_codes() {
                right_rows.push(code.and_then(|c| left_code_to_right_row[c as usize]));
            }
            true
        }
        JoinKind::Inner => {
            for (row, code) in left_key.iter_codes().enumerate() {
                if let Some(r) = code.and_then(|c| left_code_to_right_row[c as usize]) {
                    left_rows.push(row);
                    right_rows.push(Some(r));
                }
            }
            false
        }
    };

    let mut out = if all_left_rows {
        left.clone()
    } else {
        left.take(&left_rows)
    };
    for col in right.columns() {
        if col.name() == right_on {
            continue;
        }
        let name = disambiguate(&out, col.name());
        let mut gathered = col.take_opt(&right_rows);
        gathered.rename(name);
        out.add_column(gathered)?;
    }
    Ok(out)
}

/// The rendered-string reference join: hashes `Value::render()` of every key
/// cell and gathers right columns cell by cell through boxed [`Value`]s.
///
/// Kept as the behavioural reference for [`join`] (the equivalence property
/// tests and the `appendix_prepare` before/after benchmark run both
/// implementations over the same inputs).
pub fn join_rendered(
    left: &DataFrame,
    right: &DataFrame,
    left_on: &str,
    right_on: &str,
    kind: JoinKind,
) -> Result<DataFrame> {
    let left_key = left.column(left_on)?;
    let right_key = right.column(right_on)?;

    // Build a hash index over the right key (rendered value -> first row).
    let mut index: HashMap<String, usize> = HashMap::new();
    for i in 0..right_key.len() {
        let v = right_key.get(i)?;
        if v.is_null() {
            continue;
        }
        index.entry(v.render()).or_insert(i);
    }

    let mut left_rows: Vec<usize> = Vec::new();
    let mut right_rows: Vec<Option<usize>> = Vec::new();
    for i in 0..left_key.len() {
        let v = left_key.get(i)?;
        let matched = if v.is_null() {
            None
        } else {
            index.get(&v.render()).copied()
        };
        match (kind, matched) {
            (JoinKind::Inner, Some(r)) => {
                left_rows.push(i);
                right_rows.push(Some(r));
            }
            (JoinKind::Inner, None) => {}
            (JoinKind::Left, m) => {
                left_rows.push(i);
                right_rows.push(m);
            }
        }
    }

    let mut out = left.take(&left_rows);
    for col in right.columns() {
        if col.name() == right_on {
            continue;
        }
        let name = disambiguate(&out, col.name());
        let values: Vec<Value> = right_rows
            .iter()
            .map(|r| match r {
                Some(r) => col.get(*r).unwrap_or(Value::Null),
                None => Value::Null,
            })
            .collect();
        out.add_column(Column::from_values(name, values))?;
    }
    Ok(out)
}

/// The name a right column takes in the join output: unchanged when free,
/// otherwise `"<name>_right"`, then `"<name>_right2"`, `"<name>_right3"`, …
/// until unique — deterministic, never a late `DuplicateColumn` error.
fn disambiguate(out: &DataFrame, name: &str) -> String {
    if !out.has_column(name) {
        return name.to_string();
    }
    let mut candidate = format!("{name}_right");
    let mut k = 2usize;
    while out.has_column(&candidate) {
        candidate = format!("{name}_right{k}");
        k += 1;
    }
    candidate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataframe::DataFrameBuilder;

    fn left() -> DataFrame {
        DataFrameBuilder::new()
            .cat("country", vec![Some("DE"), Some("US"), Some("XX"), None])
            .float(
                "salary",
                vec![Some(60.0), Some(90.0), Some(10.0), Some(20.0)],
            )
            .build()
            .unwrap()
    }

    fn right() -> DataFrame {
        DataFrameBuilder::new()
            .cat("entity", vec![Some("DE"), Some("US"), Some("FR")])
            .float("gdp", vec![Some(4.0), Some(21.0), Some(2.9)])
            .float("salary", vec![Some(1.0), Some(2.0), Some(3.0)])
            .build()
            .unwrap()
    }

    #[test]
    fn left_join_keeps_unmatched() {
        let out = join(&left(), &right(), "country", "entity", JoinKind::Left).unwrap();
        assert_eq!(out.n_rows(), 4);
        assert_eq!(out.get(0, "gdp").unwrap(), Value::Float(4.0));
        assert_eq!(out.get(2, "gdp").unwrap(), Value::Null); // XX unmatched
        assert_eq!(out.get(3, "gdp").unwrap(), Value::Null); // null key unmatched
                                                             // name collision suffixed
        assert!(out.has_column("salary_right"));
        assert_eq!(out.get(1, "salary_right").unwrap(), Value::Float(2.0));
    }

    #[test]
    fn inner_join_drops_unmatched() {
        let out = join(&left(), &right(), "country", "entity", JoinKind::Inner).unwrap();
        assert_eq!(out.n_rows(), 2);
        assert_eq!(out.get(1, "country").unwrap(), Value::Str("US".into()));
    }

    #[test]
    fn join_missing_key_errors() {
        assert!(join(&left(), &right(), "nope", "entity", JoinKind::Left).is_err());
        assert!(join(&left(), &right(), "country", "nope", JoinKind::Left).is_err());
    }

    #[test]
    fn duplicate_right_keys_use_first_match() {
        let dup = DataFrameBuilder::new()
            .cat("entity", vec![Some("DE"), Some("DE")])
            .float("hdi", vec![Some(0.9), Some(0.1)])
            .build()
            .unwrap();
        let out = join(&left(), &dup, "country", "entity", JoinKind::Left).unwrap();
        assert_eq!(out.get(0, "hdi").unwrap(), Value::Float(0.9));
    }

    #[test]
    fn join_key_column_not_duplicated() {
        let out = join(&left(), &right(), "country", "entity", JoinKind::Left).unwrap();
        assert!(!out.has_column("entity"));
    }

    #[test]
    fn existing_right_suffix_gets_deterministic_rename() {
        // The left frame already holds both `salary` and `salary_right`, so
        // the right `salary` needs a second-level rename instead of the old
        // late `DuplicateColumn` error.
        let mut l = left();
        l.add_column(Column::from_f64(
            "salary_right",
            vec![Some(0.0), Some(0.0), Some(0.0), Some(0.0)],
        ))
        .unwrap();
        for jf in [join, join_rendered] {
            let out = jf(&l, &right(), "country", "entity", JoinKind::Left).unwrap();
            assert!(out.has_column("salary_right2"), "{:?}", out.column_names());
            assert_eq!(out.get(1, "salary_right2").unwrap(), Value::Float(2.0));
        }
    }

    #[test]
    fn gather_preserves_dtypes_and_nulls() {
        use crate::value::DType;
        let r = DataFrameBuilder::new()
            .cat("entity", vec![Some("DE"), Some("US")])
            .int("ints", vec![Some(7), None])
            .float("floats", vec![Some(1.5), Some(2.5)])
            .boolean("bools", vec![Some(true), Some(false)])
            .cat("cats", vec![Some("x"), Some("y")])
            .build()
            .unwrap();
        let out = join(&left(), &r, "country", "entity", JoinKind::Left).unwrap();
        assert_eq!(out.column("ints").unwrap().dtype(), DType::Int);
        assert_eq!(out.column("floats").unwrap().dtype(), DType::Float);
        assert_eq!(out.column("bools").unwrap().dtype(), DType::Bool);
        assert_eq!(out.column("cats").unwrap().dtype(), DType::Categorical);
        assert_eq!(out.get(0, "ints").unwrap(), Value::Int(7));
        assert_eq!(out.get(1, "ints").unwrap(), Value::Null); // null cell matched
        assert_eq!(out.get(2, "floats").unwrap(), Value::Null); // unmatched key
        assert_eq!(out.get(3, "cats").unwrap(), Value::Null); // null key
        assert_eq!(out.get(1, "bools").unwrap(), Value::Bool(false));
        assert_eq!(out.get(0, "cats").unwrap(), Value::Str("x".into()));
    }

    #[test]
    fn null_keys_on_both_sides_never_match() {
        let l = DataFrameBuilder::new()
            .cat("k", vec![None, Some("a"), None])
            .build()
            .unwrap();
        let r = DataFrameBuilder::new()
            .cat("k2", vec![None, Some("a")])
            .int("v", vec![Some(1), Some(2)])
            .build()
            .unwrap();
        let out = join(&l, &r, "k", "k2", JoinKind::Left).unwrap();
        assert_eq!(out.get(0, "v").unwrap(), Value::Null);
        assert_eq!(out.get(1, "v").unwrap(), Value::Int(2));
        assert_eq!(out.get(2, "v").unwrap(), Value::Null);
        let inner = join(&l, &r, "k", "k2", JoinKind::Inner).unwrap();
        assert_eq!(inner.n_rows(), 1);
    }

    #[test]
    fn int_keys_match_like_the_reference_join() {
        let l = DataFrameBuilder::new()
            .int("id", vec![Some(1), Some(2), Some(3), None])
            .build()
            .unwrap();
        let r = DataFrameBuilder::new()
            .int("id", vec![Some(3), Some(1)])
            .cat("tag", vec![Some("three"), Some("one")])
            .build()
            .unwrap();
        let a = join(&l, &r, "id", "id", JoinKind::Left).unwrap();
        let b = join_rendered(&l, &r, "id", "id", JoinKind::Left).unwrap();
        for row in 0..a.n_rows() {
            assert_eq!(a.get(row, "tag").unwrap(), b.get(row, "tag").unwrap());
        }
        assert_eq!(a.get(0, "tag").unwrap(), Value::Str("one".into()));
        assert_eq!(a.get(1, "tag").unwrap(), Value::Null);
    }
}
