//! Hash joins between frames.
//!
//! MESA joins the input table `T` with the table of extracted KG attributes
//! `E` on the entity column (e.g. `Country`). The extracted table has at most
//! one row per entity, so the join used throughout is a left equi-join.

use std::collections::HashMap;

use crate::column::Column;
use crate::dataframe::DataFrame;
use crate::error::{Result, TabularError};
use crate::value::Value;

/// Join flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Keep only rows with a match on both sides.
    Inner,
    /// Keep every left row; unmatched right columns become null.
    Left,
}

/// Joins `left` and `right` on `left_on = right_on`.
///
/// Right columns whose names collide with a left column are suffixed with
/// `"_right"`. When several right rows match a left row, the first match wins
/// (the extracted-attribute tables MESA builds are keyed by entity, so
/// duplicates indicate a malformed extraction and are not multiplied out).
pub fn join(
    left: &DataFrame,
    right: &DataFrame,
    left_on: &str,
    right_on: &str,
    kind: JoinKind,
) -> Result<DataFrame> {
    let left_key = left.column(left_on)?;
    let right_key = right.column(right_on)?;

    // Build a hash index over the right key (rendered value -> first row).
    let mut index: HashMap<String, usize> = HashMap::new();
    for i in 0..right_key.len() {
        let v = right_key.get(i)?;
        if v.is_null() {
            continue;
        }
        index.entry(v.render()).or_insert(i);
    }

    let mut left_rows: Vec<usize> = Vec::new();
    let mut right_rows: Vec<Option<usize>> = Vec::new();
    for i in 0..left_key.len() {
        let v = left_key.get(i)?;
        let matched = if v.is_null() {
            None
        } else {
            index.get(&v.render()).copied()
        };
        match (kind, matched) {
            (JoinKind::Inner, Some(r)) => {
                left_rows.push(i);
                right_rows.push(Some(r));
            }
            (JoinKind::Inner, None) => {}
            (JoinKind::Left, m) => {
                left_rows.push(i);
                right_rows.push(m);
            }
        }
    }

    let mut out = left.take(&left_rows);
    for col in right.columns() {
        if col.name() == right_on {
            continue;
        }
        let name = if out.has_column(col.name()) {
            format!("{}_right", col.name())
        } else {
            col.name().to_string()
        };
        if out.has_column(&name) {
            return Err(TabularError::DuplicateColumn(name));
        }
        let values: Vec<Value> = right_rows
            .iter()
            .map(|r| match r {
                Some(r) => col.get(*r).unwrap_or(Value::Null),
                None => Value::Null,
            })
            .collect();
        out.add_column(Column::from_values(name, values))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataframe::DataFrameBuilder;

    fn left() -> DataFrame {
        DataFrameBuilder::new()
            .cat("country", vec![Some("DE"), Some("US"), Some("XX"), None])
            .float(
                "salary",
                vec![Some(60.0), Some(90.0), Some(10.0), Some(20.0)],
            )
            .build()
            .unwrap()
    }

    fn right() -> DataFrame {
        DataFrameBuilder::new()
            .cat("entity", vec![Some("DE"), Some("US"), Some("FR")])
            .float("gdp", vec![Some(4.0), Some(21.0), Some(2.9)])
            .float("salary", vec![Some(1.0), Some(2.0), Some(3.0)])
            .build()
            .unwrap()
    }

    #[test]
    fn left_join_keeps_unmatched() {
        let out = join(&left(), &right(), "country", "entity", JoinKind::Left).unwrap();
        assert_eq!(out.n_rows(), 4);
        assert_eq!(out.get(0, "gdp").unwrap(), Value::Float(4.0));
        assert_eq!(out.get(2, "gdp").unwrap(), Value::Null); // XX unmatched
        assert_eq!(out.get(3, "gdp").unwrap(), Value::Null); // null key unmatched
                                                             // name collision suffixed
        assert!(out.has_column("salary_right"));
        assert_eq!(out.get(1, "salary_right").unwrap(), Value::Float(2.0));
    }

    #[test]
    fn inner_join_drops_unmatched() {
        let out = join(&left(), &right(), "country", "entity", JoinKind::Inner).unwrap();
        assert_eq!(out.n_rows(), 2);
        assert_eq!(out.get(1, "country").unwrap(), Value::Str("US".into()));
    }

    #[test]
    fn join_missing_key_errors() {
        assert!(join(&left(), &right(), "nope", "entity", JoinKind::Left).is_err());
        assert!(join(&left(), &right(), "country", "nope", JoinKind::Left).is_err());
    }

    #[test]
    fn duplicate_right_keys_use_first_match() {
        let dup = DataFrameBuilder::new()
            .cat("entity", vec![Some("DE"), Some("DE")])
            .float("hdi", vec![Some(0.9), Some(0.1)])
            .build()
            .unwrap();
        let out = join(&left(), &dup, "country", "entity", JoinKind::Left).unwrap();
        assert_eq!(out.get(0, "hdi").unwrap(), Value::Float(0.9));
    }

    #[test]
    fn join_key_column_not_duplicated() {
        let out = join(&left(), &right(), "country", "entity", JoinKind::Left).unwrap();
        assert!(!out.has_column("entity"));
    }
}
