//! Group-by: partition row indices by the values of one or more key columns.

use std::collections::HashMap;

use crate::aggregate::AggFn;
use crate::column::Column;
use crate::dataframe::DataFrame;
use crate::error::Result;
use crate::value::Value;

/// One group produced by [`group_by`]: the key values (one per key column, in
/// key order) and the member row indices.
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    /// The key values identifying the group.
    pub key: Vec<Value>,
    /// Row indices belonging to the group, in original order.
    pub rows: Vec<usize>,
}

impl Group {
    /// Number of rows in the group.
    pub fn size(&self) -> usize {
        self.rows.len()
    }
}

/// Partitions the rows of `df` by the combination of values in `keys`.
///
/// Rows where any key is null are grouped under a null key value (they form
/// their own groups), matching SQL `GROUP BY` semantics where NULLs group
/// together. Groups are returned in order of first appearance.
pub fn group_by(df: &DataFrame, keys: &[&str]) -> Result<Vec<Group>> {
    let encoded: Vec<_> = keys
        .iter()
        .map(|k| df.column(k).map(|c| c.encode()))
        .collect::<Result<Vec<_>>>()?;
    let n = df.n_rows();
    // Composite key = vector of Option<u32> codes. u32::MAX is reserved to
    // mean "null" inside the composite so groups are distinguishable.
    let mut index: HashMap<Vec<u32>, usize> = HashMap::new();
    let mut groups: Vec<Group> = Vec::new();
    for row in 0..n {
        let composite: Vec<u32> = encoded
            .iter()
            .map(|e| e.code_at(row).map(|c| c + 1).unwrap_or(0))
            .collect();
        let gi = *index.entry(composite).or_insert_with(|| {
            let key = keys
                .iter()
                .map(|k| df.get(row, k).expect("column checked"))
                .collect();
            groups.push(Group {
                key,
                rows: Vec::new(),
            });
            groups.len() - 1
        });
        groups[gi].rows.push(row);
    }
    Ok(groups)
}

/// Runs `GROUP BY keys` followed by `agg(target)` and returns a result frame
/// with one row per group: the key columns plus a column named
/// `"{agg}({target})"`.
pub fn group_aggregate(
    df: &DataFrame,
    keys: &[&str],
    target: &str,
    agg: AggFn,
) -> Result<DataFrame> {
    let groups = group_by(df, keys)?;
    let target_col = df.column(target)?;
    let mut key_values: Vec<Vec<Value>> = vec![Vec::with_capacity(groups.len()); keys.len()];
    let mut agg_values: Vec<Option<f64>> = Vec::with_capacity(groups.len());
    let mut sizes: Vec<Option<i64>> = Vec::with_capacity(groups.len());
    for g in &groups {
        for (i, v) in g.key.iter().enumerate() {
            key_values[i].push(v.clone());
        }
        agg_values.push(agg.apply(target_col, &g.rows)?);
        sizes.push(Some(g.size() as i64));
    }
    let mut columns = Vec::with_capacity(keys.len() + 2);
    for (i, k) in keys.iter().enumerate() {
        columns.push(Column::from_values(*k, std::mem::take(&mut key_values[i])));
    }
    columns.push(Column::from_f64(
        format!("{}({})", agg.name(), target),
        agg_values,
    ));
    columns.push(Column::from_i64("group_size", sizes));
    DataFrame::from_columns(columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataframe::DataFrameBuilder;

    fn df() -> DataFrame {
        DataFrameBuilder::new()
            .cat(
                "country",
                vec![Some("DE"), Some("US"), Some("DE"), Some("FR"), None],
            )
            .cat(
                "gender",
                vec![Some("M"), Some("F"), Some("F"), Some("M"), Some("F")],
            )
            .float(
                "salary",
                vec![Some(60.0), Some(90.0), Some(70.0), Some(50.0), Some(40.0)],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn single_key_groups() {
        let groups = group_by(&df(), &["country"]).unwrap();
        assert_eq!(groups.len(), 4);
        assert_eq!(groups[0].key, vec![Value::Str("DE".into())]);
        assert_eq!(groups[0].rows, vec![0, 2]);
        assert_eq!(groups[3].key, vec![Value::Null]);
        assert_eq!(groups[3].size(), 1);
    }

    #[test]
    fn multi_key_groups() {
        let groups = group_by(&df(), &["country", "gender"]).unwrap();
        assert_eq!(groups.len(), 5);
        let de_f = groups
            .iter()
            .find(|g| g.key == vec![Value::Str("DE".into()), Value::Str("F".into())])
            .unwrap();
        assert_eq!(de_f.rows, vec![2]);
    }

    #[test]
    fn group_aggregate_mean() {
        let out = group_aggregate(&df(), &["country"], "salary", AggFn::Mean).unwrap();
        assert_eq!(out.n_rows(), 4);
        assert_eq!(
            out.column_names(),
            vec!["country", "avg(salary)", "group_size"]
        );
        assert_eq!(out.get(0, "avg(salary)").unwrap(), Value::Float(65.0));
        assert_eq!(out.get(0, "group_size").unwrap(), Value::Int(2));
    }

    #[test]
    fn group_aggregate_count() {
        let out = group_aggregate(&df(), &["gender"], "salary", AggFn::Count).unwrap();
        assert_eq!(out.n_rows(), 2);
        let m = out.get(0, "count(salary)").unwrap();
        assert_eq!(m, Value::Float(2.0));
    }

    #[test]
    fn missing_key_errors() {
        assert!(group_by(&df(), &["nope"]).is_err());
        assert!(group_aggregate(&df(), &["country"], "nope", AggFn::Mean).is_err());
    }

    #[test]
    fn groups_cover_all_rows_exactly_once() {
        let d = df();
        let groups = group_by(&d, &["country", "gender"]).unwrap();
        let mut seen: Vec<usize> = groups.iter().flat_map(|g| g.rows.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..d.n_rows()).collect::<Vec<_>>());
    }
}
