//! # mesa-repro
//!
//! Umbrella crate for the reproduction of *"On Explaining Confounding Bias"*
//! (ICDE 2023). It re-exports the workspace crates so the examples and
//! integration tests can reach everything through one dependency:
//!
//! * [`mesa`] — the MESA system and the MCIMR algorithm (the paper's
//!   contribution).
//! * [`tabular`] — the columnar table engine and aggregate queries.
//! * [`infotheory`] — entropy / mutual-information estimators and CI tests.
//! * [`kg`] — the knowledge-graph substrate and attribute extraction.
//! * [`stats`] — OLS, logistic regression, correlation.
//! * [`datagen`] — the synthetic world, datasets, knowledge graph, and query
//!   workloads.
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the experiment harness that regenerates every table and figure of the
//! paper.

pub use datagen;
pub use infotheory;
pub use kg;
pub use mesa;
pub use stats;
pub use tabular;
