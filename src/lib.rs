//! # mesa-repro
//!
//! A from-scratch Rust reproduction of **MESA**, the system of *"On
//! Explaining Confounding Bias"* (ICDE 2023): given an aggregate group-by
//! query whose result shows a surprising correlation between the grouping
//! attribute (the *exposure* `T`) and the aggregated attribute (the
//! *outcome* `O`), MESA mines a small set of confounding attributes — from
//! the input table and from an external knowledge graph — that explains the
//! correlation away.
//!
//! This umbrella crate re-exports every workspace crate so examples,
//! integration tests, and downstream users reach the whole system through
//! one dependency. `cargo doc --open` on this crate is the intended entry
//! point for reading the workspace.
//!
//! ## Map: paper section → crate / module
//!
//! | Paper | What it is | Where it lives |
//! |---|---|---|
//! | §2 problem setup | Aggregate queries `SELECT T, agg(O) … GROUP BY T`, predicates, binning | [`tabular`] ([`tabular::AggregateQuery`], [`tabular::Predicate`], [`tabular::bin_frame_encoded`]) |
//! | §2.1 Def. 2.1–2.2 | The Correlation-Explanation problem, explanations, responsibility | [`mesa::problem`], [`mesa::responsibility`] |
//! | §3.1 extraction | Triple store, entity linking (NED), multi-hop attribute extraction | [`kg`] ([`kg::KnowledgeGraph`], [`kg::extract_attributes`]) |
//! | §3.2 missing data | Selection-bias detection, Inverse Probability Weighting | [`mesa::missing`], [`stats`] (logistic IRLS) |
//! | §4.1 Algorithm 1 | MCIMR greedy selection + responsibility-test stopping rule | [`mod@mesa::mcimr`] |
//! | §4.2 pruning | Offline / online candidate pruning | [`mesa::pruning`] |
//! | §4.3 Algorithm 2 | Top-k unexplained data subgroups | [`mesa::subgroups`] |
//! | §5 evaluation | Synthetic world, the four datasets, the 14-query workload | [`datagen`]; experiment binaries in `crates/bench/src/bin` |
//! | §5 baselines | Brute-Force, Top-K, Linear Regression, HypDB | [`mesa::baselines`] |
//! | (infrastructure) | Entropy / CMI estimators, CI tests, the dense counting kernel | [`infotheory`] ([`infotheory::EncodedFrame`], `infotheory::kernel`) |
//! | (infrastructure) | Persistent work-sharing pool (nested fan-outs, `MESA_THREADS`) shared by extraction, scoring, sessions | `parallel` (re-exported as [`mesa::parallel_map`], controls under [`mesa::parallel`]) |
//!
//! ## Two ways to run the system
//!
//! **One-shot:** [`mesa::Mesa::explain`] runs the full pipeline — context →
//! KG extraction → join → bin → encode → prune → MCIMR → responsibilities —
//! and returns a [`mesa::MesaReport`].
//!
//! **As a service:** [`mesa::Session`] is constructed once per dataset and
//! amortises the pipeline across queries: KG extraction is cached by
//! `(column, hops, one-to-many policy, distinct values)`, prepared queries
//! and finished reports are memoized by the canonical
//! [`tabular::AggregateQuery::fingerprint`], and independent queries batch
//! through [`mesa::Session::explain_many`]. The one-shot path is a thin
//! wrapper over a transient session, so both produce byte-identical output
//! (locked by `tests/session.rs`).
//!
//! ```
//! use mesa_repro::kg::{KnowledgeGraph, Object};
//! use mesa_repro::mesa::Mesa;
//! use mesa_repro::tabular::{AggregateQuery, DataFrameBuilder};
//!
//! // A table where salary tracks each country's wealth — but wealth itself
//! // lives only in the knowledge graph.
//! let df = DataFrameBuilder::new()
//!     .cat("Country", (0..160).map(|i| Some(["DE", "IT", "NG", "KE"][i % 4])).collect())
//!     .cat("City", (0..160).map(|i| Some(if i % 8 < 4 { "Capital" } else { "Port" })).collect())
//!     .float("Salary", (0..160).map(|i| {
//!         Some(if i % 4 < 2 { 80.0 } else { 30.0 } + (i % 5) as f64)
//!     }).collect())
//!     .build()
//!     .unwrap();
//! let mut graph = KnowledgeGraph::new();
//! // Two GDP levels across four countries: informative about salary, but
//! // not logically equivalent to the exposure (which pruning would drop).
//! for (country, gdp) in [("DE", 50.0), ("IT", 50.0), ("NG", 6.0), ("KE", 6.0)] {
//!     graph.add_fact(country, "GDP per capita", Object::number(gdp));
//! }
//!
//! // One session serves the dataset; the analyst asks several queries.
//! let mesa = Mesa::new();
//! let session = mesa.session(&df, Some(&graph), &["Country"]);
//! let by_country = AggregateQuery::avg("Country", "Salary");
//! let by_city = AggregateQuery::avg("City", "Salary");
//!
//! // Batched: independent queries fan out and share the cached extraction.
//! let reports = session.explain_many(&[by_country.clone(), by_city]);
//! let report = reports[0].as_ref().unwrap();
//! assert!(report
//!     .explanation
//!     .attributes
//!     .contains(&"GDP per capita".to_string()));
//!
//! // Asking again is a memo lookup, byte-identical to the first answer.
//! let again = session.explain(&by_country).unwrap();
//! assert_eq!(again.explanation, report.explanation);
//! assert!(session.stats().report_hits >= 1);
//!
//! // The one-shot facade runs the same staged pipeline underneath.
//! let one_shot = mesa.explain(&df, &by_country, Some(&graph), &["Country"]).unwrap();
//! assert_eq!(one_shot.explanation, report.explanation);
//! ```
//!
//! ## Where to go next
//!
//! * `examples/` — runnable scenarios: `quickstart`, `covid_deaths`,
//!   `so_salaries` (subgroups), `flight_delays` (batched sessions),
//!   `forbes_celebrities`, `missing_data_robustness` (IPW).
//! * `crates/bench/src/bin` — one binary per table / figure of the paper's
//!   evaluation, plus appendix experiments; each emits a machine-readable
//!   `BENCH_<name>.json` (see the README's "Reproducing the benchmarks").
//! * `ROADMAP.md` — the production-scale north star and open items;
//!   `CHANGES.md` — what each PR did.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use datagen;
pub use fuzz;
pub use infotheory;
pub use kg;
pub use mesa;
pub use stats;
pub use tabular;
