//! The Flights scenario: explain why average departure delays differ so much
//! between origin cities and between airlines, mining weather / population /
//! airline attributes from the knowledge graph.
//!
//! Run with `cargo run --release --example flight_delays`.

use mesa_repro::datagen::{build_kg, generate_flights, KgConfig, World, WorldConfig};
use mesa_repro::mesa::{explanation_line, Mesa};
use mesa_repro::tabular::AggregateQuery;

fn main() {
    let world = World::generate(WorldConfig::default());
    let graph = build_kg(&world, KgConfig::default());
    let flights = generate_flights(&world, 30_000, 9).expect("flights data");
    let mesa = Mesa::new();

    for (label, query, extraction) in [
        (
            "Flights Q1: average delay per origin city",
            AggregateQuery::avg("Origin_city", "Departure_delay"),
            vec!["Origin_city", "Airline"],
        ),
        (
            "Flights Q5: average delay per airline",
            AggregateQuery::avg("Airline", "Departure_delay"),
            vec!["Airline"],
        ),
    ] {
        let report = mesa
            .explain(&flights, &query, Some(&graph), &extraction)
            .expect("explanation");
        println!("== {label} ==");
        println!(
            "  baseline I(O;T)      = {:.3} bits",
            report.explanation.baseline_cmi
        );
        println!(
            "  explanation          = {}",
            explanation_line(&report.explanation)
        );
        println!(
            "  residual I(O;T|E)    = {:.3} bits",
            report.explanation.explainability
        );
        println!(
            "  candidates: {} (of which {} extracted from the KG), pruned: {}\n",
            report.n_candidates,
            report.n_extracted,
            report.pruning.dropped.len()
        );
    }
}
