//! The Flights scenario: explain why average departure delays differ so much
//! between origin cities and between airlines, mining weather / population /
//! airline attributes from the knowledge graph.
//!
//! Run with `cargo run --release --example flight_delays`.

use mesa_repro::datagen::{build_kg, generate_flights, KgConfig, World, WorldConfig};
use mesa_repro::mesa::{explanation_line, Mesa};
use mesa_repro::tabular::AggregateQuery;

fn main() {
    let world = World::generate(WorldConfig::default());
    let graph = build_kg(&world, KgConfig::default());
    let flights = generate_flights(&world, 30_000, 9).expect("flights data");

    // One session over the Flights table; both queries are independent, so
    // they go through the batched `explain_many` entry point and share the
    // session's cached KG extraction. A session fixes the extraction
    // columns for every query it serves, so Q5 now also sees Origin_city
    // attributes among its candidates (earlier revisions of this example
    // extracted only Airline attributes for Q5 — a deliberate change).
    let mesa = Mesa::new();
    let session = mesa.session(&flights, Some(&graph), &["Origin_city", "Airline"]);
    let labels = [
        "Flights Q1: average delay per origin city",
        "Flights Q5: average delay per airline",
    ];
    let queries = [
        AggregateQuery::avg("Origin_city", "Departure_delay"),
        AggregateQuery::avg("Airline", "Departure_delay"),
    ];
    let reports = session.explain_many(&queries);

    for (label, report) in labels.iter().zip(&reports) {
        let report = report.as_ref().expect("explanation");
        println!("== {label} ==");
        println!(
            "  baseline I(O;T)      = {:.3} bits",
            report.explanation.baseline_cmi
        );
        println!(
            "  explanation          = {}",
            explanation_line(&report.explanation)
        );
        println!(
            "  residual I(O;T|E)    = {:.3} bits",
            report.explanation.explainability
        );
        println!(
            "  candidates: {} (of which {} extracted from the KG), pruned: {}\n",
            report.n_candidates,
            report.n_extracted,
            report.pruning.dropped.len()
        );
    }
}
