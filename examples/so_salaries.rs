//! The Stack Overflow scenario (Example 2.1): explain the differences in
//! average developer salary per country, find the responsibility of each
//! selected attribute, and identify subgroups where the explanation fails
//! (Example 4.1 / Table 4).
//!
//! Run with `cargo run --release --example so_salaries`.

use mesa_repro::datagen::{build_kg, generate_so, KgConfig, World, WorldConfig};
use mesa_repro::mesa::{explanation_details, subgroup_table, Mesa, SubgroupConfig};
use mesa_repro::tabular::{AggregateQuery, Predicate};

fn main() {
    let world = World::generate(WorldConfig::default());
    let graph = build_kg(&world, KgConfig::default());
    let so = generate_so(&world, 12_000, 7).expect("SO data");

    // One session serves every SO query: extraction, prepared queries, and
    // reports are cached across the calls below.
    let mesa = Mesa::new();
    let session = mesa.session(&so, Some(&graph), &["Country", "Continent"]);

    // SO Q1: average salary per country.
    let q1 = AggregateQuery::avg("Country", "Salary");
    let report = session.explain(&q1).expect("explain");
    println!("== SO Q1: average salary per country ==\n");
    println!("{}", explanation_details(&report.explanation));

    // Which parts of the data does this explanation fail to cover? The
    // session reuses Q1's cached preparation and explanation here.
    let groups = session
        .unexplained_subgroups(
            &q1,
            &SubgroupConfig {
                top_k: 5,
                tau: 0.2,
                ..Default::default()
            },
        )
        .expect("subgroups");
    println!("== Unexplained subgroups (needs a different explanation) ==\n");
    println!("{}", subgroup_table(&groups));

    // SO Q3: the refined query restricted to Europe gets its own explanation.
    let q3 =
        AggregateQuery::avg("Country", "Salary").with_context(Predicate::eq("Continent", "Europe"));
    let report_eu = session.explain(&q3).expect("explanation for Europe");
    println!("== SO Q3: average salary per country in Europe ==\n");
    println!("{}", explanation_details(&report_eu.explanation));

    let stats = session.stats();
    println!(
        "(session served {} queries: {} prepared, {} report cache hits)",
        stats.report_hits + stats.report_misses,
        stats.prepared_misses,
        stats.report_hits
    );
}
