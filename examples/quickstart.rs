//! Quickstart: explain a confounded correlation in a hand-built table using a
//! hand-built knowledge graph.
//!
//! Run with `cargo run --example quickstart`.

use mesa_repro::kg::{KnowledgeGraph, Object};
use mesa_repro::mesa::{report_summary, Mesa};
use mesa_repro::tabular::{AggregateQuery, Column, DataFrame, Value};

fn main() {
    // A small developer-survey-style table: country and salary. The salary is
    // driven by each country's economy, which is *not* in the table.
    let countries = ["Germany", "Italy", "Nigeria", "Kenya"];
    let wealth = [80.0, 65.0, 25.0, 20.0];
    let n = 400;
    let mut country_col = Vec::with_capacity(n);
    let mut gender_col = Vec::with_capacity(n);
    let mut salary_col = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % countries.len();
        let male = (i / countries.len()).is_multiple_of(2);
        country_col.push(Value::from(countries[c]));
        gender_col.push(Value::from(if male { "Man" } else { "Woman" }));
        salary_col.push(Value::Float(
            wealth[c] * 1000.0 + if male { 4000.0 } else { 0.0 } + (i % 7) as f64 * 500.0,
        ));
    }
    let df = DataFrame::from_columns(vec![
        Column::from_values("Country", country_col),
        Column::from_values("Gender", gender_col),
        Column::from_values("Salary", salary_col),
    ])
    .expect("valid frame");

    // The analyst's query: average salary per country.
    let query = AggregateQuery::avg("Country", "Salary");
    println!("{}\n", query.to_sql("Developers"));
    println!(
        "{}\n",
        query.run(&df).expect("query runs").to_pretty_string(10)
    );

    // A tiny knowledge graph with country-level economic facts (the role
    // DBpedia plays in the paper).
    let mut graph = KnowledgeGraph::new();
    for (c, w) in countries.iter().zip([0.95, 0.89, 0.55, 0.52]) {
        graph.add_fact(*c, "HDI", Object::number(w));
    }
    for (c, g) in countries.iter().zip([4.2, 2.1, 0.5, 0.3]) {
        graph.add_fact(*c, "GDP", Object::number(if g > 1.0 { 3.0 } else { 0.4 }));
    }
    graph.add_fact("Germany", "wikiID", Object::integer(1));
    graph.add_fact("Italy", "wikiID", Object::integer(2));

    // Ask MESA why the correlation between Country and Salary is so strong.
    // A `Session` caches the KG extraction and the finished report, so
    // asking again — as an interactive analyst would — is a hash lookup.
    let mesa = Mesa::new();
    let session = mesa.session(&df, Some(&graph), &["Country"]);
    let report = session.explain(&query).expect("explanation");
    println!("== MESA explanation ==\n{}", report_summary(&report));

    let again = session.explain(&query).expect("cached explanation");
    assert_eq!(again.explanation, report.explanation);
    println!(
        "(asked again: served from the session cache, {} hit(s))",
        session.stats().report_hits
    );
}
