//! The Forbes scenario (Table 2, Forbes Q1–Q3): what explains the differences
//! in celebrity pay within each category?
//!
//! Run with `cargo run --release --example forbes_celebrities`.

use mesa_repro::datagen::{build_kg, generate_forbes, KgConfig, World, WorldConfig};
use mesa_repro::mesa::{explanation_line, Mesa};
use mesa_repro::tabular::{AggregateQuery, Predicate};

fn main() {
    let world = World::generate(WorldConfig::default());
    let graph = build_kg(&world, KgConfig::default());
    let forbes = generate_forbes(&world, 1_647, 11).expect("forbes data");
    // The three category queries hit the same table, so one session serves
    // them (each context selects different names, so each pays its own
    // extraction — but a repeated query would be free).
    let mesa = Mesa::new();
    let session = mesa.session(&forbes, Some(&graph), &["Name"]);

    for category in ["Actors", "Athletes", "Directors/Producers"] {
        let query =
            AggregateQuery::avg("Name", "Pay").with_context(Predicate::eq("Category", category));
        let report = session.explain(&query).expect("explanation");
        println!("== Pay of {category} ==");
        println!(
            "  explanation       = {}",
            explanation_line(&report.explanation)
        );
        println!(
            "  I(O;T) {:.3} -> I(O;T|E) {:.3} bits, {} KG attributes considered\n",
            report.explanation.baseline_cmi, report.explanation.explainability, report.n_extracted
        );
    }
    println!(
        "(the paper's ground truth: net worth + gender for actors, cups / draft pick for athletes,\n\
         net worth + awards for directors and producers)"
    );
}
