//! Demonstrates the missing-data machinery of Section 3.2: selection-bias
//! detection and Inverse Probability Weighting versus naive complete-case
//! analysis and mean imputation.
//!
//! Run with `cargo run --release --example missing_data_robustness`.

use mesa_repro::datagen::{build_kg, generate_so, KgConfig, World, WorldConfig};
use mesa_repro::infotheory::CiTestConfig;
use mesa_repro::kg::{impute_mean, remove_biased};
use mesa_repro::mesa::{
    analyze_attribute, fully_observed_columns, prepare_query, Mesa, MesaConfig, MissingPolicy,
    PrepareConfig,
};
use mesa_repro::tabular::AggregateQuery;

fn main() {
    let world = World::generate(WorldConfig::default());
    let graph = build_kg(&world, KgConfig::default());
    let so = generate_so(&world, 10_000, 3).expect("SO data");
    let query = AggregateQuery::avg("Country", "Salary");
    let mesa = Mesa::new();
    let prepared = mesa
        .prepare(&so, &query, Some(&graph), &["Country"])
        .expect("prepare");

    // Remove the top 40% of HDI values — a heavily biased removal.
    let degraded = remove_biased(&prepared.frame, "HDI", 0.4).expect("biased removal");

    // 1. Detect the selection bias.
    let encoded = mesa_repro::infotheory::EncodedFrame::from_frame(&degraded);
    let features = fully_observed_columns(&degraded);
    let info = analyze_attribute(
        &encoded,
        "HDI",
        "Salary",
        "Country",
        &features,
        CiTestConfig::default(),
    )
    .expect("analysis");
    println!(
        "HDI missing fraction : {:.1}%",
        info.missing_fraction * 100.0
    );
    println!(
        "selection bias       : {}",
        if info.biased {
            "detected"
        } else {
            "not detected"
        }
    );

    // 2. Compare explanations under IPW vs complete-case vs imputation.
    for (label, frame, policy) in [
        ("IPW (MESA)", degraded.clone(), MissingPolicy::Ipw),
        (
            "complete-case",
            degraded.clone(),
            MissingPolicy::CompleteCase,
        ),
        (
            "mean imputation",
            impute_mean(&degraded, "HDI").expect("impute"),
            MissingPolicy::CompleteCase,
        ),
    ] {
        let prepared =
            prepare_query(&frame, &query, None, &[], PrepareConfig::default()).expect("prepare");
        let system = Mesa::with_config(MesaConfig {
            missing: policy,
            ..MesaConfig::default()
        });
        let report = system.explain_prepared(&prepared).expect("explain");
        println!(
            "{label:<16} -> explanation [{}], residual I(O;T|E) = {:.4}",
            mesa_repro::mesa::explanation_line(&report.explanation),
            report.explanation.explainability
        );
    }
}
