//! The paper's running example (Example 1.1): why does the choice of country
//! have such a substantial effect on the Covid-19 death rate?
//!
//! Run with `cargo run --release --example covid_deaths`.

use mesa_repro::datagen::{build_kg, Dataset, KgConfig, World, WorldConfig};
use mesa_repro::mesa::{explanation_details, Mesa};
use mesa_repro::tabular::AggregateQuery;

fn main() {
    // Generate the synthetic world and the Covid dataset (one row per country).
    let world = World::generate(WorldConfig::default());
    let graph = build_kg(&world, KgConfig::default());
    let covid = Dataset::Covid.generate(&world, 0, 1).expect("covid data");

    let query = AggregateQuery::avg("Country", "Deaths_per_100_cases");
    println!("{}\n", query.to_sql("Covid-Data"));
    let per_country = query
        .run(&covid)
        .expect("query")
        .sort_by("avg(Deaths_per_100_cases)")
        .unwrap();
    println!(
        "lowest death rates:\n{}",
        per_country.head(5).to_pretty_string(5)
    );
    println!("(… {} countries total)\n", per_country.n_rows());

    // MESA mines candidate confounders (HDI, GDP, density, …) from the KG.
    // A session would let follow-up queries reuse this extraction; for a
    // single query the one-shot facade (a transient session) is identical.
    let mesa = Mesa::new();
    let report = mesa
        .explain(
            &covid,
            &query,
            Some(&graph),
            Dataset::Covid.extraction_columns(),
        )
        .expect("explanation");
    println!("Why does the death rate differ so much between countries?\n");
    println!("{}", explanation_details(&report.explanation));
    println!(
        "{} candidate attributes were mined from the knowledge graph; pruning removed {}.",
        report.n_extracted,
        report.pruning.dropped.len()
    );
}
